// Package netsim is the cluster-interconnect simulator the experiments
// run on: a discrete-event, packet-level model of a direct network
// whose switches are separate from the compute nodes (the paper's §4.1
// assumption), forward packets under a pluggable routing algorithm, and
// execute a pluggable marking scheme at every hop in the Figure 4
// order (route first, then mark, then transmit).
//
// The model per switch: one output queue per outgoing link with unit
// service rate (one packet per tick) and a configurable link latency.
// Adaptive routers see queue depths through the routing.LinkState
// congestion oracle, so congestion actually spreads traffic — the
// behavior that breaks path-based marking schemes.
//
// The hot path is allocation-free in steady state: events are typed
// payloads on eventq's freelist-backed heap (no closures), per-link
// state lives in dense slices indexed by the topology's port table (no
// map lookups per hop), output queues are fixed-capacity rings carved
// from one slab, and AcquirePacket recycles delivered/dropped packets
// through a freelist. Event ordering — the (time, seq) tie-break
// sequence — is bit-identical to the original closure engine, so seeded
// experiment outputs are unchanged.
package netsim

import (
	"fmt"
	"sort"

	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// DropReason classifies why the fabric discarded a packet.
type DropReason int

const (
	DropNone      DropReason = iota
	DropNoRoute              // routing stranded the packet (failures/turn rules)
	DropTTL                  // TTL expired (misrouting livelock guard)
	DropQueueFull            // output queue overflow — the congestion loss mode
)

func (d DropReason) String() string {
	switch d {
	case DropNone:
		return "none"
	case DropNoRoute:
		return "no-route"
	case DropTTL:
		return "ttl-expired"
	case DropQueueFull:
		return "queue-full"
	default:
		return fmt.Sprintf("drop(%d)", int(d))
	}
}

// Config assembles a simulation.
type Config struct {
	Net    topology.Network
	Router *routing.Router
	Scheme marking.Scheme
	Plan   *packet.AddrPlan

	// LinkLatency is the propagation delay of one hop in ticks (≥ 1).
	LinkLatency eventq.Time

	// QueueCap is the per-output-link queue capacity in packets (≥ 1).
	QueueCap int

	// SwitchDelay is the per-switch processing time in ticks (≥ 0),
	// covering routing plus marking.
	SwitchDelay eventq.Time
}

func (c *Config) applyDefaults() error {
	if c.Net == nil || c.Router == nil || c.Plan == nil {
		return fmt.Errorf("netsim: Net, Router and Plan are required")
	}
	if c.Scheme == nil {
		c.Scheme = marking.Nop{}
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.SwitchDelay < 0 {
		return fmt.Errorf("netsim: negative SwitchDelay")
	}
	if c.Plan.NumNodes() != c.Net.NumNodes() {
		return fmt.Errorf("netsim: plan has %d nodes, network has %d", c.Plan.NumNodes(), c.Net.NumNodes())
	}
	return nil
}

// DeliverFunc receives every packet ejected to its destination NIC.
type DeliverFunc func(now eventq.Time, pk *packet.Packet)

// DropFunc receives every discarded packet.
type DropFunc func(now eventq.Time, pk *packet.Packet, reason DropReason)

// Stats aggregates fabric-level counters.
type Stats struct {
	Injected  uint64
	Delivered uint64
	Dropped   map[DropReason]uint64
	TotalHops uint64
	// LatencySum accumulates delivery latency in ticks for averaging.
	LatencySum uint64
	// Misroutes counts non-productive hops taken.
	Misroutes uint64
}

// AvgLatency returns mean delivery latency in ticks.
func (s Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Delivered)
}

// AvgHops returns mean hop count of delivered packets.
func (s Stats) AvgHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Delivered)
}

// DroppedTotal sums drops across reasons.
func (s Stats) DroppedTotal() uint64 {
	var t uint64
	for _, v := range s.Dropped {
		t += v
	}
	return t
}

// Typed event kinds dispatched through HandleEvent.
const (
	evInject       int32 = iota // p = *packet.Packet entering at its SrcNode
	evTransmitDone              // a = dense link index whose head finished serializing
	evArrive                    // p = *packet.Packet, a = switch it arrives at
)

// outLink is one output port's queue + serializer state. The queue is a
// fixed-capacity ring carved out of the Network's shared slab.
type outLink struct {
	head  int32 // ring offset of the in-service packet
	count int32 // packets queued, including the one in service
	busy  bool
}

// Network is the running simulator.
type Network struct {
	cfg Config
	Q   *eventq.Queue

	// ports flattens the adjacency; a directed link's dense index is
	// its position in the flattened neighbor table.
	ports *topology.PortTable

	// out, linkPkts and qslab are indexed by dense link index; each
	// link's ring occupies qslab[li*QueueCap : (li+1)*QueueCap].
	out      []outLink
	linkPkts []uint64
	qslab    []*packet.Packet

	stats Stats

	onDeliver DeliverFunc
	onDrop    DropFunc

	nextSeq uint64

	// pool is the packet freelist behind AcquirePacket: packets flagged
	// Recycle return here after their delivery/drop callbacks.
	pool []*packet.Packet

	// latHist, when set, receives each delivered packet's latency.
	latHist *stats.Histogram
}

// New builds a simulator; the router's congestion oracle is wired to
// the dense output-queue depth array.
func New(cfg Config) (*Network, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	ports := topology.NewPortTable(cfg.Net)
	nl := ports.NumLinks()
	n := &Network{
		cfg:      cfg,
		Q:        eventq.New(),
		ports:    ports,
		out:      make([]outLink, nl),
		linkPkts: make([]uint64, nl),
		qslab:    make([]*packet.Packet, nl*cfg.QueueCap),
	}
	n.Q.SetHandler(n)
	n.stats.Dropped = make(map[DropReason]uint64)
	cfg.Router.State.Congestion = func(l topology.Link) int {
		if li := n.ports.LinkIndex(l.From, l.To); li >= 0 {
			return int(n.out[li].count)
		}
		return 0
	}
	return n, nil
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	s := n.stats
	s.Dropped = make(map[DropReason]uint64, len(n.stats.Dropped))
	for k, v := range n.stats.Dropped {
		s.Dropped[k] = v
	}
	return s
}

// OnDeliver registers the delivery sink (victim NICs, traceback
// observers). Only one sink is supported; use a fan-out closure for
// multiple observers.
func (n *Network) OnDeliver(fn DeliverFunc) { n.onDeliver = fn }

// OnDrop registers the drop sink.
func (n *Network) OnDrop(fn DropFunc) { n.onDrop = fn }

// SetLatencyHistogram attaches a histogram that receives every
// delivered packet's latency in ticks.
func (n *Network) SetLatencyHistogram(h *stats.Histogram) { n.latHist = h }

// LinkLoad returns the number of packets serialized onto the directed
// link so far.
func (n *Network) LinkLoad(l topology.Link) uint64 {
	if li := n.ports.LinkIndex(l.From, l.To); li >= 0 {
		return n.linkPkts[li]
	}
	return 0
}

// HottestLinks returns the k most-loaded directed links, descending;
// ties break on (From, To) for determinism. k < 0 is treated as 0 and
// k beyond the number of loaded links is clamped.
func (n *Network) HottestLinks(k int) []topology.Link {
	if k < 0 {
		k = 0
	}
	links := make([]topology.Link, 0, k)
	loads := make(map[topology.Link]uint64)
	for li, c := range n.linkPkts {
		if c > 0 {
			l := n.ports.LinkAt(int32(li))
			links = append(links, l)
			loads[l] = c
		}
	}
	sort.Slice(links, func(i, j int) bool {
		ci, cj := loads[links[i]], loads[links[j]]
		if ci != cj {
			return ci > cj
		}
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	if k > len(links) {
		k = len(links)
	}
	return links[:k]
}

// Now returns the current simulation time.
func (n *Network) Now() eventq.Time { return n.Q.Now() }

// AcquirePacket builds a packet from the fabric's freelist: identical
// to packet.NewPacket but recycled after delivery or drop, so a steady
// traffic stream allocates nothing. The returned packet is flagged
// Recycle; delivery/drop sinks must not retain it past their callback.
func (n *Network) AcquirePacket(src, dst topology.NodeID, proto packet.Proto, payload int) *packet.Packet {
	var pk *packet.Packet
	if last := len(n.pool) - 1; last >= 0 {
		pk = n.pool[last]
		n.pool = n.pool[:last]
	} else {
		pk = new(packet.Packet)
	}
	pk.Init(n.cfg.Plan, src, dst, proto, payload)
	pk.Recycle = true
	return pk
}

// reclaim returns a pool-owned packet to the freelist once the fabric
// is done with it.
func (n *Network) reclaim(pk *packet.Packet) {
	if pk.Recycle {
		pk.Recycle = false
		n.pool = append(n.pool, pk)
	}
}

// Inject introduces a packet into the fabric at its source node's
// switch at the current simulation time. The scheme's OnInject hook
// runs here — the "first enters a switch from a computing node" moment.
func (n *Network) Inject(pk *packet.Packet) {
	n.InjectAt(n.Q.Now(), pk)
}

// InjectAt schedules the injection at a future time.
func (n *Network) InjectAt(at eventq.Time, pk *packet.Packet) {
	if pk.SrcNode < 0 || int(pk.SrcNode) >= n.cfg.Net.NumNodes() {
		panic(fmt.Sprintf("netsim: inject at invalid node %d", pk.SrcNode))
	}
	pk.Seq = n.nextSeq
	n.nextSeq++
	pk.MisroutesUsed = 0
	n.stats.Injected++
	n.Q.PostAt(at, evInject, 0, pk)
}

// HandleEvent dispatches the fabric's typed events; it implements
// eventq.Handler and is invoked by the queue, not by users.
func (n *Network) HandleEvent(now eventq.Time, kind int32, a int64, p any) {
	switch kind {
	case evInject:
		pk := p.(*packet.Packet)
		pk.InjectedAt = int64(now)
		n.cfg.Scheme.OnInject(pk)
		n.arriveAtSwitch(now, pk, pk.SrcNode)
	case evTransmitDone:
		n.transmitDone(now, int32(a))
	case evArrive:
		n.arriveAtSwitch(now, p.(*packet.Packet), topology.NodeID(a))
	default:
		panic(fmt.Sprintf("netsim: unknown event kind %d", kind))
	}
}

// arriveAtSwitch processes a packet at switch cur: eject, or route +
// mark + enqueue.
func (n *Network) arriveAtSwitch(now eventq.Time, pk *packet.Packet, cur topology.NodeID) {
	if cur == pk.DstNode {
		n.deliver(now, pk)
		return
	}
	if pk.Hdr.TTL == 0 {
		n.drop(now, pk, DropTTL)
		return
	}
	hop, err := n.cfg.Router.NextHop(cur, pk.DstNode, pk.MisroutesUsed)
	if err != nil {
		n.drop(now, pk, DropNoRoute)
		return
	}
	if hop.Misroute {
		pk.MisroutesUsed++
		n.stats.Misroutes++
	}
	// Figure 4 order: the routing decision is committed, now mark.
	n.cfg.Scheme.OnForward(cur, hop.Next, pk)
	pk.Hdr.TTL--
	li := n.ports.LinkIndex(cur, hop.Next)
	if li < 0 {
		panic(fmt.Sprintf("netsim: no link %d->%d", cur, hop.Next))
	}
	n.enqueue(now, pk, li)
}

func (n *Network) enqueue(now eventq.Time, pk *packet.Packet, li int32) {
	ol := &n.out[li]
	cap32 := int32(n.cfg.QueueCap)
	if ol.count >= cap32 {
		n.drop(now, pk, DropQueueFull)
		return
	}
	ring := n.qslab[int(li)*n.cfg.QueueCap:]
	pos := ol.head + ol.count
	if pos >= cap32 {
		pos -= cap32
	}
	ring[pos] = pk
	ol.count++
	if !ol.busy {
		n.startTransmit(now, li)
	}
}

// startTransmit begins serializing the head packet: one tick of
// service plus SwitchDelay, then LinkLatency of flight.
func (n *Network) startTransmit(now eventq.Time, li int32) {
	n.out[li].busy = true
	n.Q.PostAt(now+1+n.cfg.SwitchDelay, evTransmitDone, int64(li), nil)
}

// transmitDone pops the serialized head packet onto the wire and, if
// more packets wait, restarts the serializer. The arrival is scheduled
// before the next transmit-done, preserving the original engine's
// (time, seq) event order exactly.
func (n *Network) transmitDone(now eventq.Time, li int32) {
	ol := &n.out[li]
	cap32 := int32(n.cfg.QueueCap)
	ring := n.qslab[int(li)*n.cfg.QueueCap:]
	pk := ring[ol.head]
	ring[ol.head] = nil
	ol.head++
	if ol.head == cap32 {
		ol.head = 0
	}
	ol.count--
	pk.Hops++
	n.linkPkts[li]++
	n.Q.PostAt(now+n.cfg.LinkLatency, evArrive, int64(n.ports.To(li)), pk)
	if ol.count > 0 {
		n.startTransmit(now, li)
	} else {
		ol.busy = false
	}
}

func (n *Network) deliver(now eventq.Time, pk *packet.Packet) {
	// §6.2 authentication point: the destination switch's ejection hook
	// (e.g. marking.Seal) runs before the NIC sees the packet.
	if ej, ok := n.cfg.Scheme.(marking.Ejector); ok {
		ej.OnEject(pk)
	}
	pk.DeliveredAt = int64(now)
	n.stats.Delivered++
	n.stats.TotalHops += uint64(pk.Hops)
	n.stats.LatencySum += uint64(int64(now) - pk.InjectedAt)
	if n.latHist != nil {
		n.latHist.Add(float64(int64(now) - pk.InjectedAt))
	}
	if n.onDeliver != nil {
		n.onDeliver(now, pk)
	}
	n.reclaim(pk)
}

func (n *Network) drop(now eventq.Time, pk *packet.Packet, reason DropReason) {
	n.stats.Dropped[reason]++
	if n.onDrop != nil {
		n.onDrop(now, pk, reason)
	}
	n.reclaim(pk)
}

// Run executes events until the horizon (exclusive); RunAll drains the
// queue with a runaway bound.
func (n *Network) Run(horizon eventq.Time) { n.Q.Run(horizon) }

func (n *Network) RunAll(maxEvents uint64) { n.Q.Drain(maxEvents) }
