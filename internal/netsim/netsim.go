// Package netsim is the cluster-interconnect simulator the experiments
// run on: a discrete-event, packet-level model of a direct network
// whose switches are separate from the compute nodes (the paper's §4.1
// assumption), forward packets under a pluggable routing algorithm, and
// execute a pluggable marking scheme at every hop in the Figure 4
// order (route first, then mark, then transmit).
//
// The model per switch: one output queue per outgoing link with unit
// service rate (one packet per tick) and a configurable link latency.
// Adaptive routers see queue depths through the routing.LinkState
// congestion oracle, so congestion actually spreads traffic — the
// behavior that breaks path-based marking schemes.
package netsim

import (
	"fmt"
	"sort"

	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// DropReason classifies why the fabric discarded a packet.
type DropReason int

const (
	DropNone      DropReason = iota
	DropNoRoute              // routing stranded the packet (failures/turn rules)
	DropTTL                  // TTL expired (misrouting livelock guard)
	DropQueueFull            // output queue overflow — the congestion loss mode
)

func (d DropReason) String() string {
	switch d {
	case DropNone:
		return "none"
	case DropNoRoute:
		return "no-route"
	case DropTTL:
		return "ttl-expired"
	case DropQueueFull:
		return "queue-full"
	default:
		return fmt.Sprintf("drop(%d)", int(d))
	}
}

// Config assembles a simulation.
type Config struct {
	Net    topology.Network
	Router *routing.Router
	Scheme marking.Scheme
	Plan   *packet.AddrPlan

	// LinkLatency is the propagation delay of one hop in ticks (≥ 1).
	LinkLatency eventq.Time

	// QueueCap is the per-output-link queue capacity in packets (≥ 1).
	QueueCap int

	// SwitchDelay is the per-switch processing time in ticks (≥ 0),
	// covering routing plus marking.
	SwitchDelay eventq.Time
}

func (c *Config) applyDefaults() error {
	if c.Net == nil || c.Router == nil || c.Plan == nil {
		return fmt.Errorf("netsim: Net, Router and Plan are required")
	}
	if c.Scheme == nil {
		c.Scheme = marking.Nop{}
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.SwitchDelay < 0 {
		return fmt.Errorf("netsim: negative SwitchDelay")
	}
	if c.Plan.NumNodes() != c.Net.NumNodes() {
		return fmt.Errorf("netsim: plan has %d nodes, network has %d", c.Plan.NumNodes(), c.Net.NumNodes())
	}
	return nil
}

// DeliverFunc receives every packet ejected to its destination NIC.
type DeliverFunc func(now eventq.Time, pk *packet.Packet)

// DropFunc receives every discarded packet.
type DropFunc func(now eventq.Time, pk *packet.Packet, reason DropReason)

// Stats aggregates fabric-level counters.
type Stats struct {
	Injected  uint64
	Delivered uint64
	Dropped   map[DropReason]uint64
	TotalHops uint64
	// LatencySum accumulates delivery latency in ticks for averaging.
	LatencySum uint64
	// Misroutes counts non-productive hops taken.
	Misroutes uint64
}

// AvgLatency returns mean delivery latency in ticks.
func (s Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Delivered)
}

// AvgHops returns mean hop count of delivered packets.
func (s Stats) AvgHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Delivered)
}

// DroppedTotal sums drops across reasons.
func (s Stats) DroppedTotal() uint64 {
	var t uint64
	for _, v := range s.Dropped {
		t += v
	}
	return t
}

// outLink is one output port's queue + serializer.
type outLink struct {
	to    topology.NodeID
	queue []*packet.Packet
	busy  bool
}

// Network is the running simulator.
type Network struct {
	cfg   Config
	Q     *eventq.Queue
	links map[topology.Link]*outLink
	stats Stats

	onDeliver DeliverFunc
	onDrop    DropFunc

	// misroutesUsed tracks per-packet misroute budget consumption,
	// keyed by packet sequence number.
	misroutesUsed map[uint64]int

	nextSeq uint64

	// latHist, when set, receives each delivered packet's latency.
	latHist *stats.Histogram

	// linkPkts counts packets serialized onto each directed link — the
	// per-link load profile hotspot analyses read.
	linkPkts map[topology.Link]uint64
}

// New builds a simulator; the router's congestion oracle is wired to
// the output-queue depths.
func New(cfg Config) (*Network, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	n := &Network{
		cfg:           cfg,
		Q:             eventq.New(),
		links:         make(map[topology.Link]*outLink),
		misroutesUsed: make(map[uint64]int),
		linkPkts:      make(map[topology.Link]uint64),
	}
	n.stats.Dropped = make(map[DropReason]uint64)
	for _, l := range topology.Links(cfg.Net) {
		n.links[l] = &outLink{to: l.To}
	}
	cfg.Router.State.Congestion = func(l topology.Link) int {
		if ol, ok := n.links[l]; ok {
			return len(ol.queue)
		}
		return 0
	}
	return n, nil
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	s := n.stats
	s.Dropped = make(map[DropReason]uint64, len(n.stats.Dropped))
	for k, v := range n.stats.Dropped {
		s.Dropped[k] = v
	}
	return s
}

// OnDeliver registers the delivery sink (victim NICs, traceback
// observers). Only one sink is supported; use a fan-out closure for
// multiple observers.
func (n *Network) OnDeliver(fn DeliverFunc) { n.onDeliver = fn }

// OnDrop registers the drop sink.
func (n *Network) OnDrop(fn DropFunc) { n.onDrop = fn }

// SetLatencyHistogram attaches a histogram that receives every
// delivered packet's latency in ticks.
func (n *Network) SetLatencyHistogram(h *stats.Histogram) { n.latHist = h }

// LinkLoad returns the number of packets serialized onto the directed
// link so far.
func (n *Network) LinkLoad(l topology.Link) uint64 { return n.linkPkts[l] }

// HottestLinks returns the k most-loaded directed links, descending;
// ties break on (From, To) for determinism.
func (n *Network) HottestLinks(k int) []topology.Link {
	links := make([]topology.Link, 0, len(n.linkPkts))
	for l, c := range n.linkPkts {
		if c > 0 {
			links = append(links, l)
		}
	}
	sort.Slice(links, func(i, j int) bool {
		ci, cj := n.linkPkts[links[i]], n.linkPkts[links[j]]
		if ci != cj {
			return ci > cj
		}
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	if k > len(links) {
		k = len(links)
	}
	return links[:k]
}

// Now returns the current simulation time.
func (n *Network) Now() eventq.Time { return n.Q.Now() }

// Inject introduces a packet into the fabric at its source node's
// switch at the current simulation time. The scheme's OnInject hook
// runs here — the "first enters a switch from a computing node" moment.
func (n *Network) Inject(pk *packet.Packet) {
	n.InjectAt(n.Q.Now(), pk)
}

// InjectAt schedules the injection at a future time.
func (n *Network) InjectAt(at eventq.Time, pk *packet.Packet) {
	if pk.SrcNode < 0 || int(pk.SrcNode) >= n.cfg.Net.NumNodes() {
		panic(fmt.Sprintf("netsim: inject at invalid node %d", pk.SrcNode))
	}
	pk.Seq = n.nextSeq
	n.nextSeq++
	n.stats.Injected++
	n.Q.At(at, func(now eventq.Time) {
		pk.InjectedAt = int64(now)
		n.cfg.Scheme.OnInject(pk)
		n.arriveAtSwitch(now, pk, pk.SrcNode)
	})
}

// arriveAtSwitch processes a packet at switch cur: eject, or route +
// mark + enqueue.
func (n *Network) arriveAtSwitch(now eventq.Time, pk *packet.Packet, cur topology.NodeID) {
	if cur == pk.DstNode {
		n.deliver(now, pk)
		return
	}
	if pk.Hdr.TTL == 0 {
		n.drop(now, pk, DropTTL)
		return
	}
	hop, err := n.cfg.Router.NextHop(cur, pk.DstNode, n.misroutesUsed[pk.Seq])
	if err != nil {
		n.drop(now, pk, DropNoRoute)
		return
	}
	if hop.Misroute {
		n.misroutesUsed[pk.Seq]++
		n.stats.Misroutes++
	}
	// Figure 4 order: the routing decision is committed, now mark.
	n.cfg.Scheme.OnForward(cur, hop.Next, pk)
	pk.Hdr.TTL--
	n.enqueue(now, pk, topology.Link{From: cur, To: hop.Next})
}

func (n *Network) enqueue(now eventq.Time, pk *packet.Packet, l topology.Link) {
	ol := n.links[l]
	if ol == nil {
		panic(fmt.Sprintf("netsim: no link %v", l))
	}
	if len(ol.queue) >= n.cfg.QueueCap {
		n.drop(now, pk, DropQueueFull)
		return
	}
	ol.queue = append(ol.queue, pk)
	if !ol.busy {
		n.startTransmit(now, l, ol)
	}
}

// startTransmit begins serializing the head packet: one tick of
// service plus SwitchDelay, then LinkLatency of flight.
func (n *Network) startTransmit(now eventq.Time, l topology.Link, ol *outLink) {
	ol.busy = true
	n.Q.At(now+1+n.cfg.SwitchDelay, func(t eventq.Time) {
		pk := ol.queue[0]
		ol.queue = ol.queue[1:]
		pk.Hops++
		n.linkPkts[l]++
		n.Q.At(t+n.cfg.LinkLatency, func(t2 eventq.Time) {
			n.arriveAtSwitch(t2, pk, l.To)
		})
		if len(ol.queue) > 0 {
			n.startTransmit(t, l, ol)
		} else {
			ol.busy = false
		}
	})
}

func (n *Network) deliver(now eventq.Time, pk *packet.Packet) {
	// §6.2 authentication point: the destination switch's ejection hook
	// (e.g. marking.Seal) runs before the NIC sees the packet.
	if ej, ok := n.cfg.Scheme.(marking.Ejector); ok {
		ej.OnEject(pk)
	}
	pk.DeliveredAt = int64(now)
	n.stats.Delivered++
	n.stats.TotalHops += uint64(pk.Hops)
	n.stats.LatencySum += uint64(int64(now) - pk.InjectedAt)
	if n.latHist != nil {
		n.latHist.Add(float64(int64(now) - pk.InjectedAt))
	}
	delete(n.misroutesUsed, pk.Seq)
	if n.onDeliver != nil {
		n.onDeliver(now, pk)
	}
}

func (n *Network) drop(now eventq.Time, pk *packet.Packet, reason DropReason) {
	n.stats.Dropped[reason]++
	delete(n.misroutesUsed, pk.Seq)
	if n.onDrop != nil {
		n.onDrop(now, pk, reason)
	}
}

// Run executes events until the horizon (exclusive); RunAll drains the
// queue with a runaway bound.
func (n *Network) Run(horizon eventq.Time) { n.Q.Run(horizon) }

func (n *Network) RunAll(maxEvents uint64) { n.Q.Drain(maxEvents) }
