package netsim

import (
	"testing"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// BenchmarkUniformLoad measures simulator throughput: events per second
// moving 1000 uniform packets through an 8×8 mesh.
func BenchmarkUniformLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := topology.NewMesh2D(8)
		r := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
		r.Sel = routing.CongestionSelector{R: rng.NewStream(uint64(i))}
		plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
		n, err := New(Config{Net: m, Router: r, Plan: plan, QueueCap: 64})
		if err != nil {
			b.Fatal(err)
		}
		stream := rng.NewStream(uint64(i) + 99)
		for k := 0; k < 1000; k++ {
			src := topology.NodeID(stream.Intn(m.NumNodes()))
			dst := topology.NodeID(stream.Intn(m.NumNodes()))
			n.InjectAt(0, packet.NewPacket(plan, src, dst, packet.ProtoUDP, 32))
		}
		n.RunAll(10_000_000)
		if n.Stats().Delivered+n.Stats().DroppedTotal() != 1000 {
			b.Fatal("packets lost")
		}
	}
}

// BenchmarkMarkedVsUnmarkedFabric isolates the per-packet scheme cost
// inside the event-driven fabric.
func BenchmarkMarkedVsUnmarkedFabric(b *testing.B) {
	for _, withDDPM := range []bool{false, true} {
		name := "none"
		if withDDPM {
			name = "ddpm"
		}
		b.Run(name, func(b *testing.B) {
			m := topology.NewMesh2D(8)
			var scheme marking.Scheme = marking.Nop{}
			if withDDPM {
				d, err := marking.NewDDPM(m)
				if err != nil {
					b.Fatal(err)
				}
				scheme = d
			}
			for i := 0; i < b.N; i++ {
				r := routing.NewRouter(m, routing.NewXY(m))
				plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
				n, err := New(Config{Net: m, Router: r, Scheme: scheme, Plan: plan, QueueCap: 512})
				if err != nil {
					b.Fatal(err)
				}
				src := m.IndexOf(topology.Coord{0, 0})
				dst := m.IndexOf(topology.Coord{7, 7})
				for k := 0; k < 200; k++ {
					n.InjectAt(0, packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 32))
				}
				n.RunAll(10_000_000)
			}
		})
	}
}
