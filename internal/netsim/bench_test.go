package netsim

import (
	"testing"

	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// BenchmarkUniformLoad measures simulator throughput: events per second
// moving 1000 uniform packets through an 8×8 mesh.
func BenchmarkUniformLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := topology.NewMesh2D(8)
		r := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
		r.Sel = routing.CongestionSelector{R: rng.NewStream(uint64(i))}
		plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
		n, err := New(Config{Net: m, Router: r, Plan: plan, QueueCap: 64})
		if err != nil {
			b.Fatal(err)
		}
		stream := rng.NewStream(uint64(i) + 99)
		for k := 0; k < 1000; k++ {
			src := topology.NodeID(stream.Intn(m.NumNodes()))
			dst := topology.NodeID(stream.Intn(m.NumNodes()))
			n.InjectAt(0, packet.NewPacket(plan, src, dst, packet.ProtoUDP, 32))
		}
		n.RunAll(10_000_000)
		if n.Stats().Delivered+n.Stats().DroppedTotal() != 1000 {
			b.Fatal("packets lost")
		}
	}
}

// BenchmarkAdaptiveTorus16 is the headline engine benchmark from the
// performance issue: a 16×16 torus under minimal-adaptive routing with
// the congestion selector and DDPM marking, moving 2000 uniform packets
// per iteration. It reports raw simulator throughput as events/sec.
func BenchmarkAdaptiveTorus16(b *testing.B) {
	tor := topology.NewTorus2D(16)
	d, err := marking.NewDDPM(tor)
	if err != nil {
		b.Fatal(err)
	}
	plan := packet.NewAddrPlan(packet.DefaultBase, tor.NumNodes())
	var fired uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := routing.NewRouter(tor, routing.NewMinimalAdaptive(tor))
		r.Sel = routing.CongestionSelector{R: rng.NewStream(7)}
		n, err := New(Config{Net: tor, Router: r, Scheme: d, Plan: plan, QueueCap: 64})
		if err != nil {
			b.Fatal(err)
		}
		stream := rng.NewStream(uint64(i) + 1)
		for k := 0; k < 2000; k++ {
			src := topology.NodeID(stream.Intn(tor.NumNodes()))
			dst := topology.NodeID(stream.Intn(tor.NumNodes()))
			n.InjectAt(eventq.Time(k/8), n.AcquirePacket(src, dst, packet.ProtoUDP, 32))
		}
		n.RunAll(10_000_000)
		fired += n.Q.Fired()
	}
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkForwardHop measures the per-hop steady-state cost: one
// pooled packet crossing an 8×8 mesh corner to corner (14 hops) under
// XY routing with DDPM marking. The headline number is allocs/op, which
// must be zero — the engine's whole point.
func BenchmarkForwardHop(b *testing.B) {
	m := topology.NewMesh2D(8)
	d, err := marking.NewDDPM(m)
	if err != nil {
		b.Fatal(err)
	}
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	n, err := New(Config{Net: m, Router: r, Scheme: d, Plan: plan, QueueCap: 64})
	if err != nil {
		b.Fatal(err)
	}
	src := m.IndexOf(topology.Coord{0, 0})
	dst := m.IndexOf(topology.Coord{7, 7})
	// Warm the event slab and packet pool out of the measured region.
	n.Inject(n.AcquirePacket(src, dst, packet.ProtoUDP, 32))
	n.RunAll(1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Inject(n.AcquirePacket(src, dst, packet.ProtoUDP, 32))
		n.RunAll(1_000_000)
	}
	if got := n.Stats().Delivered; got != uint64(b.N)+1 {
		b.Fatalf("delivered %d of %d", got, b.N+1)
	}
	b.ReportMetric(14, "hops/op")
}

// BenchmarkFabricThroughput sweeps the three paper topologies at
// matched node counts, reporting delivered packets/sec of simulated
// fabric under uniform random traffic with adaptive routing + DDPM.
func BenchmarkFabricThroughput(b *testing.B) {
	cases := []struct {
		name string
		net  topology.Network
	}{
		{"mesh16x16", topology.NewMesh2D(16)},
		{"torus16x16", topology.NewTorus2D(16)},
		{"hypercube8", topology.NewHypercube(8)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			d, err := marking.NewDDPM(tc.net)
			if err != nil {
				b.Fatal(err)
			}
			plan := packet.NewAddrPlan(packet.DefaultBase, tc.net.NumNodes())
			var delivered uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := routing.NewRouter(tc.net, routing.NewMinimalAdaptive(tc.net))
				r.Sel = routing.CongestionSelector{R: rng.NewStream(7)}
				n, err := New(Config{Net: tc.net, Router: r, Scheme: d, Plan: plan, QueueCap: 64})
				if err != nil {
					b.Fatal(err)
				}
				stream := rng.NewStream(uint64(i) + 1)
				for k := 0; k < 1000; k++ {
					src := topology.NodeID(stream.Intn(tc.net.NumNodes()))
					dst := topology.NodeID(stream.Intn(tc.net.NumNodes()))
					n.InjectAt(eventq.Time(k/8), n.AcquirePacket(src, dst, packet.ProtoUDP, 32))
				}
				n.RunAll(10_000_000)
				delivered += n.Stats().Delivered
			}
			b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "pkts/sec")
		})
	}
}

// BenchmarkMarkedVsUnmarkedFabric isolates the per-packet scheme cost
// inside the event-driven fabric.
func BenchmarkMarkedVsUnmarkedFabric(b *testing.B) {
	for _, withDDPM := range []bool{false, true} {
		name := "none"
		if withDDPM {
			name = "ddpm"
		}
		b.Run(name, func(b *testing.B) {
			m := topology.NewMesh2D(8)
			var scheme marking.Scheme = marking.Nop{}
			if withDDPM {
				d, err := marking.NewDDPM(m)
				if err != nil {
					b.Fatal(err)
				}
				scheme = d
			}
			for i := 0; i < b.N; i++ {
				r := routing.NewRouter(m, routing.NewXY(m))
				plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
				n, err := New(Config{Net: m, Router: r, Scheme: scheme, Plan: plan, QueueCap: 512})
				if err != nil {
					b.Fatal(err)
				}
				src := m.IndexOf(topology.Coord{0, 0})
				dst := m.IndexOf(topology.Coord{7, 7})
				for k := 0; k < 200; k++ {
					n.InjectAt(0, packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 32))
				}
				n.RunAll(10_000_000)
			}
		})
	}
}
