package wire

import (
	"sync"
	"testing"

	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/topology"
)

const testTopoID uint32 = 0xDEADBEEF

func slabRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			T: eventq.Time(i), Topo: testTopoID,
			Victim: topology.NodeID(i % 7),
			MF:     uint16(i), Src: packet.Addr(100 + i%13), Proto: 6,
		}
	}
	return recs
}

func TestSlabDecodeRoundTrip(t *testing.T) {
	pool := NewSlabPool(2)
	recs := slabRecords(300)

	t.Run("records payload", func(t *testing.T) {
		frame := AppendFrame(nil, recs)
		s := pool.Get()
		defer s.Release()
		if err := s.AppendRecordsPayload(frame[HeaderSize:]); err != nil {
			t.Fatal(err)
		}
		if s.Ctxs != nil {
			t.Error("untraced decode materialized a ctx slice")
		}
		checkRecords(t, s.Recs, recs)
	})

	t.Run("sealed payload", func(t *testing.T) {
		frame := AppendSealed(nil, 42, recs)
		s := pool.Get()
		defer s.Release()
		seq, err := s.AppendSealedPayload(frame[HeaderSize:])
		if err != nil {
			t.Fatal(err)
		}
		if seq != 42 {
			t.Errorf("seq = %d, want 42", seq)
		}
		checkRecords(t, s.Recs, recs)
	})

	t.Run("sealed crc reject", func(t *testing.T) {
		frame := AppendSealed(nil, 42, recs)
		frame[HeaderSize+10] ^= 0xFF
		s := pool.Get()
		defer s.Release()
		if _, err := s.AppendSealedPayload(frame[HeaderSize:]); err == nil {
			t.Fatal("corrupted sealed payload decoded")
		}
	})

	t.Run("traced payloads", func(t *testing.T) {
		trs := make([]TracedRecord, len(recs))
		for i, r := range recs {
			trs[i] = TracedRecord{Record: r, Ctx: TraceContext{ID: uint64(i + 1), Sent: int64(i)}}
		}
		frame := AppendTracedFrame(nil, trs)
		s := pool.Get()
		defer s.Release()
		if err := s.AppendTracedPayload(frame[HeaderSize:]); err != nil {
			t.Fatal(err)
		}
		checkRecords(t, s.Recs, recs)
		for i, c := range s.Ctxs {
			if c != trs[i].Ctx {
				t.Fatalf("ctx[%d] = %+v, want %+v", i, c, trs[i].Ctx)
			}
		}

		sealed := AppendTracedSealed(nil, 7, trs)
		s2 := pool.Get()
		defer s2.Release()
		seq, err := s2.AppendTracedSealedPayload(sealed[HeaderSize:])
		if err != nil {
			t.Fatal(err)
		}
		if seq != 7 {
			t.Errorf("seq = %d, want 7", seq)
		}
		checkRecords(t, s2.Recs, recs)
	})

	t.Run("mixed frames backfill zero ctxs", func(t *testing.T) {
		s := pool.Get()
		defer s.Release()
		plain := AppendFrame(nil, recs[:5])
		if err := s.AppendRecordsPayload(plain[HeaderSize:]); err != nil {
			t.Fatal(err)
		}
		traced := AppendTracedFrame(nil, []TracedRecord{{Record: recs[5], Ctx: TraceContext{ID: 99}}})
		if err := s.AppendTracedPayload(traced[HeaderSize:]); err != nil {
			t.Fatal(err)
		}
		if len(s.Ctxs) != 6 {
			t.Fatalf("ctxs len = %d, want 6", len(s.Ctxs))
		}
		for i := 0; i < 5; i++ {
			if s.Ctxs[i].ID != 0 {
				t.Errorf("backfilled ctx %d nonzero: %+v", i, s.Ctxs[i])
			}
		}
		if s.Ctxs[5].ID != 99 {
			t.Errorf("traced ctx lost: %+v", s.Ctxs[5])
		}
	})

	t.Run("datagram frame", func(t *testing.T) {
		one := AppendFrame(nil, recs[:4])
		two := AppendTracedFrame(one, []TracedRecord{{Record: recs[4], Ctx: TraceContext{ID: 3}}})
		s := pool.Get()
		defer s.Release()
		rest := two
		for len(rest) > 0 {
			consumed, err := s.AppendDatagramFrame(rest)
			if err != nil {
				t.Fatal(err)
			}
			rest = rest[consumed:]
		}
		checkRecords(t, s.Recs, recs[:5])
	})

	t.Run("full", func(t *testing.T) {
		s := pool.Get()
		defer s.Release()
		for i := 0; i < SlabCap; i++ {
			s.Append(recs[0])
		}
		frame := AppendFrame(nil, recs[:1])
		if err := s.AppendRecordsPayload(frame[HeaderSize:]); err != ErrSlabFull {
			t.Fatalf("append past capacity: %v, want ErrSlabFull", err)
		}
	})
}

func checkRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSlabDropFront(t *testing.T) {
	pool := NewSlabPool(1)
	s := pool.Get()
	defer s.Release()
	recs := slabRecords(10)
	for i, r := range recs {
		s.AppendTraced(TracedRecord{Record: r, Ctx: TraceContext{ID: uint64(i + 1)}})
	}
	s.DropFront(3)
	if s.Len() != 7 {
		t.Fatalf("len after DropFront(3) = %d, want 7", s.Len())
	}
	if s.Recs[0] != recs[3] || s.Ctxs[0].ID != 4 {
		t.Errorf("head after DropFront = %+v ctx %d, want %+v ctx 4", s.Recs[0], s.Ctxs[0].ID, recs[3])
	}
	s.DropFront(100)
	if s.Len() != 0 {
		t.Errorf("len after oversized DropFront = %d, want 0", s.Len())
	}
}

// TestSlabPartition checks the counting sort: per-shard contiguous
// groups, victim grouping within each group, invalid records moved to
// the tail, and the record multiset preserved.
func TestSlabPartition(t *testing.T) {
	const numNodes, nshards = 16, 4
	pool := NewSlabPool(1)
	s := pool.Get()
	defer s.Release()

	victims := []topology.NodeID{5, 1, 9, 5, 13, 1, 2, 5, 9, 6, 1}
	for i, v := range victims {
		s.AppendTraced(TracedRecord{
			Record: Record{T: eventq.Time(i), Topo: testTopoID, Victim: v, MF: uint16(i)},
			Ctx:    TraceContext{ID: uint64(i + 1)},
		})
	}
	// Invalid: wrong topo, victim out of range, negative victim.
	s.AppendTraced(TracedRecord{Record: Record{T: 100, Topo: testTopoID + 1, Victim: 3}, Ctx: TraceContext{ID: 100}})
	s.AppendTraced(TracedRecord{Record: Record{T: 101, Topo: testTopoID, Victim: numNodes}, Ctx: TraceContext{ID: 101}})
	s.AppendTraced(TracedRecord{Record: Record{T: 102, Topo: testTopoID, Victim: -1}, Ctx: TraceContext{ID: 102}})
	total := s.Len()

	groups, valid := s.Partition(testTopoID, numNodes, nshards)
	if valid != len(victims) {
		t.Fatalf("valid = %d, want %d", valid, len(victims))
	}

	// Groups tile [0, valid) and stay shard-pure, victim-grouped.
	covered := 0
	seenVictim := make(map[topology.NodeID]bool)
	for _, g := range groups {
		if g.Start != covered {
			t.Fatalf("group %+v does not start where the last ended (%d)", g, covered)
		}
		covered = g.End
		var prev topology.NodeID = -1
		for i := g.Start; i < g.End; i++ {
			v := s.Recs[i].Victim
			if int(v)%nshards != g.Shard {
				t.Fatalf("record %d (victim %d) in shard-%d group", i, v, g.Shard)
			}
			if v != prev {
				if seenVictim[v] {
					t.Fatalf("victim %d split across non-adjacent runs", v)
				}
				seenVictim[v] = true
				prev = v
			}
		}
	}
	if covered != valid {
		t.Fatalf("groups cover [0,%d), want [0,%d)", covered, valid)
	}

	// Tail holds exactly the invalid records.
	for i := valid; i < total; i++ {
		if s.Ctxs[i].ID < 100 {
			t.Errorf("tail slot %d holds valid record (ctx %d)", i, s.Ctxs[i].ID)
		}
	}

	// Ctxs moved with their records, and the multiset is intact.
	seen := make(map[uint64]eventq.Time)
	for i, r := range s.Recs {
		if s.Ctxs[i].ID == 0 {
			t.Fatalf("record %d lost its ctx", i)
		}
		seen[s.Ctxs[i].ID] = r.T
	}
	if len(seen) != total {
		t.Fatalf("scatter kept %d distinct ctxs, want %d", len(seen), total)
	}
	for id, tt := range seen {
		if eventq.Time(id-1) != tt && id < 100 {
			t.Errorf("ctx %d landed on record T=%d", id, tt)
		}
	}

	// A second partition on the same slab must work (double buffers).
	groups2, valid2 := s.Partition(testTopoID, numNodes, nshards)
	if valid2 != valid || len(groups2) != len(groups) {
		t.Fatalf("re-partition: valid %d groups %d, want %d/%d", valid2, len(groups2), valid, len(groups))
	}
}

func TestSlabPoolReuseAndOutstanding(t *testing.T) {
	pool := NewSlabPool(4)
	s := pool.Get()
	if got := pool.Outstanding(); got != 1 {
		t.Fatalf("outstanding after Get = %d, want 1", got)
	}
	s.Append(Record{Topo: testTopoID})
	s.Release()
	if got := pool.Outstanding(); got != 0 {
		t.Fatalf("outstanding after Release = %d, want 0", got)
	}
	s2 := pool.Get()
	if s2 != s {
		t.Error("pool did not recycle the released slab")
	}
	if s2.Len() != 0 {
		t.Errorf("recycled slab not reset: len %d", s2.Len())
	}

	// Refcount: retain per handed-out view, last release recycles.
	s2.Retain()
	s2.Retain()
	s2.Release()
	s2.Release()
	if got := pool.Outstanding(); got != 1 {
		t.Fatalf("outstanding with one ref left = %d, want 1", got)
	}
	s2.Release()
	if got := pool.Outstanding(); got != 0 {
		t.Fatalf("outstanding after final release = %d, want 0", got)
	}
}

// TestSlabConcurrentStress exercises the pool and refcounts across
// goroutines; run under -race it checks the handoff discipline: fill
// and partition single-goroutine, then hand read-only views around.
func TestSlabConcurrentStress(t *testing.T) {
	pool := NewSlabPool(8)
	recs := slabRecords(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				s := pool.Get()
				for _, r := range recs {
					s.Append(r)
				}
				groups, valid := s.Partition(testTopoID, 7, 3)
				if valid != len(recs) {
					t.Errorf("valid = %d, want %d", valid, len(recs))
				}
				var inner sync.WaitGroup
				for _, g := range groups {
					s.Retain()
					view := s.Recs[g.Start:g.End]
					inner.Add(1)
					go func() {
						defer inner.Done()
						var sum eventq.Time
						for _, r := range view {
							sum += r.T
						}
						_ = sum
						s.Release()
					}()
				}
				inner.Wait()
				s.Release()
			}
		}(w)
	}
	wg.Wait()
	if got := pool.Outstanding(); got != 0 {
		t.Fatalf("outstanding after stress = %d, want 0 (slab leak)", got)
	}
}

func TestClientRejectsOversizeMaxBatch(t *testing.T) {
	if _, err := NewClient(ClientConfig{Addr: "127.0.0.1:1", MaxBatch: MaxRecordsPerSealed + 1}); err == nil {
		t.Error("MaxBatch over the sealed-frame cap accepted")
	}
	if _, err := NewClient(ClientConfig{Addr: "127.0.0.1:1", MaxBatch: MaxTracedPerSealed + 1, Trace: true}); err == nil {
		t.Error("traced MaxBatch over the traced sealed-frame cap accepted")
	}
	if c, err := NewClient(ClientConfig{Addr: "127.0.0.1:1", MaxBatch: MaxRecordsPerSealed}); err != nil {
		t.Errorf("MaxBatch at the cap rejected: %v", err)
	} else {
		c.Close()
	}
}
