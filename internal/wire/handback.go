package wire

// Handback extension: the frame type a cluster instance uses to ship a
// victim's cumulative identification state back to its ring owner when
// a membership change (a rejoin, a runtime join) re-routes the victim
// away from the instance that accumulated it.
//
// TypeHandback carries an opaque snapshot payload whose layout belongs
// to internal/cluster; the wire layer only frames and CRC-seals it.
// Unlike gossip it is acked: the sender writes one TypeHandback frame
// and reads one TypeAck back before releasing the state — the ack is
// what makes dropping the local copy safe.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// TypeHandback is a CRC-tailed opaque victim-state handback
	// payload. The receiver answers each frame with a TypeAck carrying
	// the sender's sequence number plus one.
	TypeHandback uint8 = 9

	// HandbackOverhead is the crc32(4) tail sealing a handback payload.
	HandbackOverhead = 4

	// MaxHandbackBody is the largest handback body that fits one frame.
	MaxHandbackBody = MaxFramePayload - HandbackOverhead
)

// AppendHandback appends one TypeHandback frame sealing body with a
// CRC tail. It panics past MaxHandbackBody — senders cap their
// snapshots instead of splitting.
func AppendHandback(b, body []byte) []byte {
	if len(body) > MaxHandbackBody {
		panic(fmt.Sprintf("wire: %d-byte handback body exceeds the %d-byte limit", len(body), MaxHandbackBody))
	}
	b = appendHeader(b, TypeHandback, len(body)+HandbackOverhead)
	b = append(b, body...)
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(body))
}

// ParseHandback verifies a TypeHandback payload's CRC tail and returns
// the body. The body aliases payload — copy it before the next
// ReadFrame.
func ParseHandback(payload []byte) ([]byte, error) {
	if len(payload) < HandbackOverhead {
		return nil, fmt.Errorf("%w: handback payload %d bytes", ErrBadFrame, len(payload))
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := binary.BigEndian.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("%w: handback crc mismatch", ErrBadFrame)
	}
	return body, nil
}
