package wire

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/eventq"
	"repro/internal/packet"
)

func fwdTestRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			T:      eventq.Time(123 + i),
			Topo:   0xAB12CD34,
			Victim: 7,
			MF:     uint16(i * 37),
			Src:    packet.Addr(0x0A000001 + i),
			Proto:  6,
		}
	}
	return recs
}

func TestForwardedRoundTrip(t *testing.T) {
	recs := fwdTestRecords(5)
	b := AppendForwarded(nil, 0xFEEDFACE, 42, recs)

	ftype, n, err := checkHeader(b)
	if err != nil {
		t.Fatalf("checkHeader: %v", err)
	}
	if ftype != TypeForwarded {
		t.Fatalf("frame type = %d, want %d", ftype, TypeForwarded)
	}
	origin, seq, out, err := ParseForwarded(b[HeaderSize:HeaderSize+n], nil)
	if err != nil {
		t.Fatalf("ParseForwarded: %v", err)
	}
	if origin != 0xFEEDFACE || seq != 42 {
		t.Fatalf("origin/seq = %#x/%d, want 0xfeedface/42", origin, seq)
	}
	if len(out) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(out), len(recs))
	}
	for i := range recs {
		if out[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, out[i], recs[i])
		}
	}
}

func TestForwardedCorruptionDetected(t *testing.T) {
	b := AppendForwarded(nil, 1, 0, fwdTestRecords(3))
	b[HeaderSize+20] ^= 0xFF
	if _, _, _, err := ParseForwarded(b[HeaderSize:], nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupted forwarded frame parsed: err = %v", err)
	}
}

func TestForwardedSlabDecode(t *testing.T) {
	recs := fwdTestRecords(9)
	b := AppendForwarded(nil, 77, 13, recs)

	pool := NewSlabPool(1)
	s := pool.Get()
	defer s.Release()
	origin, seq, err := s.AppendForwardedPayload(b[HeaderSize:])
	if err != nil {
		t.Fatalf("AppendForwardedPayload: %v", err)
	}
	if origin != 77 || seq != 13 {
		t.Fatalf("origin/seq = %d/%d, want 77/13", origin, seq)
	}
	if len(s.Recs) != len(recs) {
		t.Fatalf("slab holds %d records, want %d", len(s.Recs), len(recs))
	}
}

func TestForwardedReaderUnwraps(t *testing.T) {
	recs := fwdTestRecords(4)
	b := AppendForwarded(nil, 5, 0, recs)
	r := NewReader(bytes.NewReader(b))
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if got != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got, recs[i])
		}
	}
}

func TestGossipRoundTrip(t *testing.T) {
	body := []byte("anti-entropy delta payload")
	b := AppendGossip(nil, body)

	ftype, n, err := checkHeader(b)
	if err != nil {
		t.Fatalf("checkHeader: %v", err)
	}
	if ftype != TypeGossip {
		t.Fatalf("frame type = %d, want %d", ftype, TypeGossip)
	}
	got, err := ParseGossip(b[HeaderSize : HeaderSize+n])
	if err != nil {
		t.Fatalf("ParseGossip: %v", err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body = %q, want %q", got, body)
	}

	// Empty bodies are legal (pure heartbeat).
	if got, err := ParseGossip(AppendGossip(nil, nil)[HeaderSize:]); err != nil || len(got) != 0 {
		t.Fatalf("empty gossip: body %q, err %v", got, err)
	}
}

func TestGossipCorruptionDetected(t *testing.T) {
	b := AppendGossip(nil, []byte{1, 2, 3, 4})
	b[HeaderSize+1] ^= 0x80
	if _, err := ParseGossip(b[HeaderSize:]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupted gossip frame parsed: err = %v", err)
	}
}

// TestForwardClientNegotiation covers both server answers to a
// forwarding hello: an echoing server takes TypeForwarded frames, a
// refusing one fails the connection instead of silently accepting the
// records as first-hand ingest.
func TestForwardClientNegotiation(t *testing.T) {
	type result struct {
		origins []uint64
		recs    []Record
	}
	serve := func(t *testing.T, echo bool) (addr string, done <-chan result) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		ch := make(chan result, 1)
		go func() {
			defer ln.Close()
			var res result
			conn, err := ln.Accept()
			if err != nil {
				ch <- res
				return
			}
			defer conn.Close()
			rd := NewReader(conn)
			var accepted uint64
			for {
				ftype, payload, err := rd.ReadFrame()
				if err != nil {
					ch <- res
					return
				}
				switch ftype {
				case TypeHello:
					_, _, flags, err := ParseHelloFlags(payload)
					if err != nil {
						ch <- res
						return
					}
					var ack uint32
					if echo {
						ack = flags & HelloFlagForward
					}
					conn.Write(AppendAckFlags(nil, accepted, ack))
				case TypeForwarded:
					origin, _, recs, err := ParseForwarded(payload, nil)
					if err != nil {
						ch <- res
						return
					}
					res.origins = append(res.origins, origin)
					res.recs = append(res.recs, recs...)
					accepted += uint64(len(recs))
					conn.Write(AppendAck(nil, accepted))
				}
			}
		}()
		return ln.Addr().String(), ch
	}

	t.Run("echoed", func(t *testing.T) {
		addr, done := serve(t, true)
		c, err := NewClient(ClientConfig{Addr: addr, ForwardOrigin: 0xABCD, MaxAttempts: 3})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		recs := fwdTestRecords(6)
		if err := c.Send(recs); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if err := c.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		c.Close()
		res := <-done
		if len(res.recs) != len(recs) {
			t.Fatalf("server saw %d records, want %d", len(res.recs), len(recs))
		}
		for _, o := range res.origins {
			if o != 0xABCD {
				t.Fatalf("origin %#x, want 0xabcd", o)
			}
		}
	})

	t.Run("refused", func(t *testing.T) {
		addr, done := serve(t, false)
		c, err := NewClient(ClientConfig{
			Addr: addr, ForwardOrigin: 0xABCD,
			MaxAttempts: 2, Sleep: func(time.Duration) {},
		})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		if err := c.Send(fwdTestRecords(2)); err != nil {
			t.Fatalf("Send should buffer without error, got %v", err)
		}
		if err := c.Flush(); err == nil {
			t.Fatal("Flush succeeded against a refusing server")
		}
		if got := c.Delivered(); got != 0 {
			t.Fatalf("Delivered = %d, want 0", got)
		}
		c.Close()
		res := <-done
		if len(res.recs) != 0 {
			t.Fatalf("refusing server still got %d records", len(res.recs))
		}
	})
}

func fwdTestTraced(n int) []TracedRecord {
	recs := fwdTestRecords(n)
	trs := make([]TracedRecord, n)
	for i, r := range recs {
		trs[i] = TracedRecord{Record: r, Ctx: TraceContext{
			ID:     uint64(0xC0FFEE00 + i),
			Sent:   int64(1000 + i),
			Routed: int64(2000 + i),
		}}
	}
	return trs
}

func TestTracedForwardedRoundTrip(t *testing.T) {
	trs := fwdTestTraced(5)
	b := AppendTracedForwarded(nil, 0xFEEDFACE, 42, trs)

	ftype, n, err := checkHeader(b)
	if err != nil {
		t.Fatalf("checkHeader: %v", err)
	}
	if ftype != TypeTracedForwarded {
		t.Fatalf("frame type = %d, want %d", ftype, TypeTracedForwarded)
	}
	origin, seq, out, err := ParseTracedForwarded(b[HeaderSize:HeaderSize+n], nil)
	if err != nil {
		t.Fatalf("ParseTracedForwarded: %v", err)
	}
	if origin != 0xFEEDFACE || seq != 42 {
		t.Fatalf("origin/seq = %#x/%d, want 0xfeedface/42", origin, seq)
	}
	if len(out) != len(trs) {
		t.Fatalf("decoded %d records, want %d", len(out), len(trs))
	}
	for i := range trs {
		want := trs[i]
		want.Ctx.Origin = 0xFEEDFACE // parse stamps the frame origin per record
		if out[i] != want {
			t.Fatalf("record %d = %+v, want %+v", i, out[i], want)
		}
	}
}

func TestTracedForwardedCorruptionDetected(t *testing.T) {
	b := AppendTracedForwarded(nil, 1, 0, fwdTestTraced(3))
	b[HeaderSize+30] ^= 0xFF
	if _, _, _, err := ParseTracedForwarded(b[HeaderSize:], nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupted traced forwarded frame parsed: err = %v", err)
	}
}

func TestTracedForwardedSlabDecode(t *testing.T) {
	trs := fwdTestTraced(9)
	b := AppendTracedForwarded(nil, 77, 13, trs)

	pool := NewSlabPool(1)
	s := pool.Get()
	defer s.Release()
	origin, seq, err := s.AppendTracedForwardedPayload(b[HeaderSize:])
	if err != nil {
		t.Fatalf("AppendTracedForwardedPayload: %v", err)
	}
	if origin != 77 || seq != 13 {
		t.Fatalf("origin/seq = %d/%d, want 77/13", origin, seq)
	}
	if len(s.Recs) != len(trs) || len(s.Ctxs) != len(trs) {
		t.Fatalf("slab holds %d records / %d ctxs, want %d", len(s.Recs), len(s.Ctxs), len(trs))
	}
	for i, tr := range trs {
		if s.Recs[i] != tr.Record {
			t.Fatalf("record %d = %+v, want %+v", i, s.Recs[i], tr.Record)
		}
		want := tr.Ctx
		want.Origin = 77
		if s.Ctxs[i] != want {
			t.Fatalf("ctx %d = %+v, want %+v", i, s.Ctxs[i], want)
		}
	}
}

// TestTracedForwardedReaderStripsHopLane: the generic stream reader
// unwraps traced forwarded frames keeping id+sent but shedding the
// cluster-internal hop lane, so its output always re-encodes as plain
// 16-byte trace contexts (the fuzz round-trip contract).
func TestTracedForwardedReaderStripsHopLane(t *testing.T) {
	trs := fwdTestTraced(4)
	b := AppendTracedForwarded(nil, 5, 0, trs)
	r := NewReader(bytes.NewReader(b))
	for i := range trs {
		got, err := r.NextTraced()
		if err != nil {
			t.Fatalf("NextTraced %d: %v", i, err)
		}
		want := trs[i]
		want.Ctx.Routed, want.Ctx.Origin = 0, 0
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
}

// TestTracedForwardNegotiation covers the three server answers to a
// traced forwarding hello: both flags echoed → TypeTracedForwarded
// frames with contexts intact; forward-only echoed → downgrade to
// plain TypeForwarded (records delivered, contexts shed, the
// OnTraceDowngrade hook fired); no forward echo → hard failure as
// before.
func TestTracedForwardNegotiation(t *testing.T) {
	type result struct {
		tracedFrames int
		plainFrames  int
		trs          []TracedRecord
	}
	serve := func(t *testing.T, echoMask uint32) (addr string, done <-chan result) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		ch := make(chan result, 1)
		go func() {
			defer ln.Close()
			var res result
			conn, err := ln.Accept()
			if err != nil {
				ch <- res
				return
			}
			defer conn.Close()
			rd := NewReader(conn)
			var accepted uint64
			for {
				ftype, payload, err := rd.ReadFrame()
				if err != nil {
					ch <- res
					return
				}
				switch ftype {
				case TypeHello:
					_, _, flags, err := ParseHelloFlags(payload)
					if err != nil {
						ch <- res
						return
					}
					conn.Write(AppendAckFlags(nil, accepted, flags&echoMask))
				case TypeTracedForwarded:
					_, _, trs, err := ParseTracedForwarded(payload, nil)
					if err != nil {
						ch <- res
						return
					}
					res.tracedFrames++
					res.trs = append(res.trs, trs...)
					accepted += uint64(len(trs))
					conn.Write(AppendAck(nil, accepted))
				case TypeForwarded:
					_, _, recs, err := ParseForwarded(payload, nil)
					if err != nil {
						ch <- res
						return
					}
					res.plainFrames++
					for _, r := range recs {
						res.trs = append(res.trs, TracedRecord{Record: r})
					}
					accepted += uint64(len(recs))
					conn.Write(AppendAck(nil, accepted))
				}
			}
		}()
		return ln.Addr().String(), ch
	}

	t.Run("both-echoed", func(t *testing.T) {
		addr, done := serve(t, HelloFlagForward|HelloFlagTrace)
		c, err := NewClient(ClientConfig{Addr: addr, ForwardOrigin: 0xABCD, Trace: true, MaxAttempts: 3})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		trs := fwdTestTraced(6)
		if err := c.SendTraced(trs); err != nil {
			t.Fatalf("SendTraced: %v", err)
		}
		if err := c.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		c.Close()
		res := <-done
		if res.tracedFrames == 0 || res.plainFrames != 0 {
			t.Fatalf("frames traced=%d plain=%d, want traced only", res.tracedFrames, res.plainFrames)
		}
		if len(res.trs) != len(trs) {
			t.Fatalf("server saw %d records, want %d", len(res.trs), len(trs))
		}
		for i, tr := range trs {
			want := tr
			want.Ctx.Origin = 0xABCD
			if res.trs[i] != want {
				t.Fatalf("record %d = %+v, want %+v", i, res.trs[i], want)
			}
		}
	})

	t.Run("trace-downgraded", func(t *testing.T) {
		addr, done := serve(t, HelloFlagForward)
		downgrades := 0
		c, err := NewClient(ClientConfig{
			Addr: addr, ForwardOrigin: 0xABCD, Trace: true, MaxAttempts: 3,
			OnTraceDowngrade: func() { downgrades++ },
		})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		trs := fwdTestTraced(6)
		if err := c.SendTraced(trs); err != nil {
			t.Fatalf("SendTraced: %v", err)
		}
		if err := c.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		c.Close()
		res := <-done
		if res.plainFrames == 0 || res.tracedFrames != 0 {
			t.Fatalf("frames traced=%d plain=%d, want plain only", res.tracedFrames, res.plainFrames)
		}
		if len(res.trs) != len(trs) {
			t.Fatalf("server saw %d records, want %d (downgrade must not lose records)", len(res.trs), len(trs))
		}
		for i, tr := range trs {
			if res.trs[i].Record != tr.Record {
				t.Fatalf("record %d = %+v, want %+v", i, res.trs[i].Record, tr.Record)
			}
			if res.trs[i].Ctx != (TraceContext{}) {
				t.Fatalf("record %d kept a context across a downgrade: %+v", i, res.trs[i].Ctx)
			}
		}
		if downgrades == 0 {
			t.Fatal("OnTraceDowngrade never fired")
		}
	})

	t.Run("forward-refused", func(t *testing.T) {
		addr, done := serve(t, HelloFlagTrace)
		c, err := NewClient(ClientConfig{
			Addr: addr, ForwardOrigin: 0xABCD, Trace: true,
			MaxAttempts: 2, Sleep: func(time.Duration) {},
		})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		if err := c.SendTraced(fwdTestTraced(2)); err != nil {
			t.Fatalf("SendTraced should buffer without error, got %v", err)
		}
		if err := c.Flush(); err == nil {
			t.Fatal("Flush succeeded against a forward-refusing server")
		}
		if got := c.Delivered(); got != 0 {
			t.Fatalf("Delivered = %d, want 0", got)
		}
		c.Close()
		res := <-done
		if len(res.trs) != 0 {
			t.Fatalf("refusing server still got %d records", len(res.trs))
		}
	})
}
