package wire

// Trace-context extension: an optional 16-byte context (64-bit trace id
// + exporter send timestamp) riding beside each record, so one specific
// record can be followed from the exporter's Send call through the
// daemon's identify → detect → block pipeline and into the flight
// recorder. The extension is carried in its own frame types
// (TypeTracedRecords / TypeTracedSealed) so legacy streams parse
// unchanged; session clients negotiate it with a flag in the hello and
// fall back to plain frames when the server does not echo it.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// TypeTracedRecords is a bare record batch where every record is
	// followed by a 16-byte trace context — the traced sibling of
	// TypeRecords, valid on streams and in datagrams.
	TypeTracedRecords uint8 = 5

	// TypeTracedSealed is the traced sibling of TypeSealed: cumulative
	// sequence number, traced records, CRC tail. Sent by session
	// clients after the server acked the trace hello flag.
	TypeTracedSealed uint8 = 6

	// TraceCtxSize is the encoded trace context: id(8) + sent(8).
	TraceCtxSize = 16

	// TracedRecordSize is one record plus its trace context.
	TracedRecordSize = RecordSize + TraceCtxSize

	// HelloFlagTrace, set in an extended hello's flags word, asks the
	// server to accept TypeTracedSealed frames on this session. The
	// server echoes the flag in an extended ack when it will.
	HelloFlagTrace uint32 = 1 << 0

	// HelloTracePayloadSize is the extended hello: streamID(8) +
	// base(8) + flags(4) + crc32(4). Legacy 20-byte hellos remain
	// valid and mean flags == 0.
	HelloTracePayloadSize = 24

	// AckTracePayloadSize is the extended ack: count(8) + flags(4) +
	// crc32(4). Legacy 12-byte acks remain valid (flags == 0).
	AckTracePayloadSize = 16

	// MaxTracedPerFrame and MaxTracedPerSealed are the per-frame traced
	// record capacities under the 16-bit payload length.
	MaxTracedPerFrame  = MaxFramePayload / TracedRecordSize
	MaxTracedPerSealed = (MaxFramePayload - SealedOverhead) / TracedRecordSize
)

// TraceContext is the per-record tracing extension. A zero ID means
// "untraced": legacy frames decode to records with a zero context, and
// the pipeline skips span capture for them.
//
// Routed and Origin are the cluster forward-hop lane: a non-owning
// instance stamps Routed when it decides to forward the record and
// Origin names itself, so the owner can stitch a forward span into the
// timeline. They ride only TypeTracedForwarded frames (FwdCtxSize) —
// the exporter-facing 16-byte encoding of TypeTracedRecords and
// TypeTracedSealed is unchanged and never carries them.
type TraceContext struct {
	ID     uint64 // trace id, unique per exporter stream
	Sent   int64  // exporter send time, unix nanoseconds (0 = unknown)
	Routed int64  // forward-hop route time at the origin instance (0 = not forwarded)
	Origin uint64 // forwarding instance's member id (0 = not forwarded)
}

// TracedRecord pairs a Record with its trace context.
type TracedRecord struct {
	Record
	Ctx TraceContext
}

// AppendTraceContext appends tc's 16-byte encoding (id + sent) to b.
// The forward-hop fields (Routed, Origin) are not part of this layout;
// they are carried only by TypeTracedForwarded frames.
func AppendTraceContext(b []byte, tc TraceContext) []byte {
	var buf [TraceCtxSize]byte
	binary.BigEndian.PutUint64(buf[0:8], tc.ID)
	binary.BigEndian.PutUint64(buf[8:16], uint64(tc.Sent))
	return append(b, buf[:]...)
}

// DecodeTraceContext decodes one trace context from the first
// TraceCtxSize bytes of b.
func DecodeTraceContext(b []byte) (TraceContext, error) {
	if len(b) < TraceCtxSize {
		return TraceContext{}, fmt.Errorf("%w: short trace context: %d bytes", ErrBadFrame, len(b))
	}
	return TraceContext{
		ID:   binary.BigEndian.Uint64(b[0:8]),
		Sent: int64(binary.BigEndian.Uint64(b[8:16])),
	}, nil
}

// appendTracedRecord appends one record + context pair.
func appendTracedRecord(b []byte, tr TracedRecord) []byte {
	b = AppendRecord(b, tr.Record)
	return AppendTraceContext(b, tr.Ctx)
}

// decodeTracedRecord decodes one record + context pair from b.
func decodeTracedRecord(b []byte) (TracedRecord, error) {
	if len(b) < TracedRecordSize {
		return TracedRecord{}, fmt.Errorf("%w: short traced record: %d bytes", ErrBadFrame, len(b))
	}
	rec, err := DecodeRecord(b)
	if err != nil {
		return TracedRecord{}, err
	}
	tc, err := DecodeTraceContext(b[RecordSize:])
	if err != nil {
		return TracedRecord{}, err
	}
	return TracedRecord{Record: rec, Ctx: tc}, nil
}

// AppendTracedFrame appends one TypeTracedRecords frame holding trs.
// It panics if trs exceeds MaxTracedPerFrame, like AppendFrame.
func AppendTracedFrame(b []byte, trs []TracedRecord) []byte {
	if len(trs) > MaxTracedPerFrame {
		panic(fmt.Sprintf("wire: %d traced records exceed the %d-record frame limit", len(trs), MaxTracedPerFrame))
	}
	b = appendHeader(b, TypeTracedRecords, len(trs)*TracedRecordSize)
	for _, tr := range trs {
		b = appendTracedRecord(b, tr)
	}
	return b
}

// AppendTracedSealed appends one traced session frame: seq plus traced
// records, CRC-tailed like AppendSealed. It panics past
// MaxTracedPerSealed — splitting is the Client's job.
func AppendTracedSealed(b []byte, seq uint64, trs []TracedRecord) []byte {
	if len(trs) > MaxTracedPerSealed {
		panic(fmt.Sprintf("wire: %d traced records exceed the %d-record sealed-frame limit", len(trs), MaxTracedPerSealed))
	}
	b = appendHeader(b, TypeTracedSealed, SealedOverhead+len(trs)*TracedRecordSize)
	start := len(b)
	b = binary.BigEndian.AppendUint64(b, seq)
	for _, tr := range trs {
		b = appendTracedRecord(b, tr)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

// ParseTracedSealed decodes a TypeTracedSealed payload, appending the
// traced records to trs (pass a reused slice's [:0] to avoid per-frame
// allocation).
func ParseTracedSealed(payload []byte, trs []TracedRecord) (seq uint64, out []TracedRecord, err error) {
	if len(payload) < SealedOverhead || (len(payload)-SealedOverhead)%TracedRecordSize != 0 {
		return 0, nil, fmt.Errorf("%w: traced sealed payload %d bytes", ErrBadFrame, len(payload))
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := binary.BigEndian.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return 0, nil, fmt.Errorf("%w: traced sealed crc mismatch", ErrBadFrame)
	}
	seq = binary.BigEndian.Uint64(body[0:8])
	for off := 8; off < len(body); off += TracedRecordSize {
		tr, err := decodeTracedRecord(body[off:])
		if err != nil {
			return 0, nil, err
		}
		trs = append(trs, tr)
	}
	return seq, trs, nil
}

// ParseTracedRecords decodes a TypeTracedRecords payload (alignment
// validated at the frame header) into trs — the stream-reader sibling
// of ParseAnyFrame for callers that already consumed the header.
func ParseTracedRecords(payload []byte, trs []TracedRecord) ([]TracedRecord, error) {
	return parseTracedPayload(payload, trs)
}

// parseTracedPayload decodes a TypeTracedRecords payload into trs.
func parseTracedPayload(payload []byte, trs []TracedRecord) ([]TracedRecord, error) {
	for off := 0; off+TracedRecordSize <= len(payload); off += TracedRecordSize {
		tr, err := decodeTracedRecord(payload[off:])
		if err != nil {
			return trs, err
		}
		trs = append(trs, tr)
	}
	return trs, nil
}

// AppendHelloFlags appends a session-open frame carrying a flags word
// (extension negotiation: the server honors the flags it echoes back in
// the extended ack). flags == 0 degrades to the legacy 20-byte hello so
// old servers keep parsing new clients that have nothing to negotiate.
func AppendHelloFlags(b []byte, streamID, base uint64, flags uint32) []byte {
	if flags == 0 {
		return AppendHello(b, streamID, base)
	}
	b = appendHeader(b, TypeHello, HelloTracePayloadSize)
	var p [HelloTracePayloadSize]byte
	binary.BigEndian.PutUint64(p[0:8], streamID)
	binary.BigEndian.PutUint64(p[8:16], base)
	binary.BigEndian.PutUint32(p[16:20], flags)
	binary.BigEndian.PutUint32(p[20:24], crc32.ChecksumIEEE(p[:20]))
	return append(b, p[:]...)
}

// ParseHelloFlags decodes either hello layout: the legacy 20-byte
// payload (flags 0) or the extended 24-byte one.
func ParseHelloFlags(payload []byte) (streamID, base uint64, flags uint32, err error) {
	switch len(payload) {
	case HelloPayloadSize:
		streamID, base, err = ParseHello(payload)
		return streamID, base, 0, err
	case HelloTracePayloadSize:
		if got := binary.BigEndian.Uint32(payload[20:24]); got != crc32.ChecksumIEEE(payload[:20]) {
			return 0, 0, 0, fmt.Errorf("%w: hello crc mismatch", ErrBadFrame)
		}
		return binary.BigEndian.Uint64(payload[0:8]),
			binary.BigEndian.Uint64(payload[8:16]),
			binary.BigEndian.Uint32(payload[16:20]), nil
	default:
		return 0, 0, 0, fmt.Errorf("%w: hello payload %d bytes", ErrBadFrame, len(payload))
	}
}

// AppendAckFlags appends the server→client cumulative-accepted frame
// with a flags word echoing the negotiated hello extensions. flags == 0
// degrades to the legacy 12-byte ack.
func AppendAckFlags(b []byte, count uint64, flags uint32) []byte {
	if flags == 0 {
		return AppendAck(b, count)
	}
	b = appendHeader(b, TypeAck, AckTracePayloadSize)
	var p [AckTracePayloadSize]byte
	binary.BigEndian.PutUint64(p[0:8], count)
	binary.BigEndian.PutUint32(p[8:12], flags)
	binary.BigEndian.PutUint32(p[12:16], crc32.ChecksumIEEE(p[:12]))
	return append(b, p[:]...)
}

// ParseAckFlags decodes either ack layout: legacy 12-byte (flags 0) or
// extended 16-byte.
func ParseAckFlags(payload []byte) (count uint64, flags uint32, err error) {
	switch len(payload) {
	case AckPayloadSize:
		count, err = ParseAck(payload)
		return count, 0, err
	case AckTracePayloadSize:
		if got := binary.BigEndian.Uint32(payload[12:16]); got != crc32.ChecksumIEEE(payload[:12]) {
			return 0, 0, fmt.Errorf("%w: ack crc mismatch", ErrBadFrame)
		}
		return binary.BigEndian.Uint64(payload[0:8]), binary.BigEndian.Uint32(payload[8:12]), nil
	default:
		return 0, 0, fmt.Errorf("%w: ack payload %d bytes", ErrBadFrame, len(payload))
	}
}

// ParseAnyFrame decodes a complete record-bearing frame held in b —
// the datagram entry point once traced frames exist. It handles both
// TypeRecords (zero trace contexts) and TypeTracedRecords, appends the
// decoded traced records to trs, and returns the bytes consumed so
// callers can loop over packed datagrams.
func ParseAnyFrame(b []byte, trs []TracedRecord) (out []TracedRecord, consumed int, err error) {
	ftype, n, err := checkHeader(b)
	if err != nil {
		return trs, 0, err
	}
	if len(b) < HeaderSize+n {
		return trs, 0, fmt.Errorf("%w: truncated payload: have %d of %d bytes",
			ErrBadFrame, len(b)-HeaderSize, n)
	}
	payload := b[HeaderSize : HeaderSize+n]
	switch ftype {
	case TypeRecords:
		for off := 0; off+RecordSize <= len(payload); off += RecordSize {
			rec, err := DecodeRecord(payload[off:])
			if err != nil {
				return trs, 0, err
			}
			trs = append(trs, TracedRecord{Record: rec})
		}
	case TypeTracedRecords:
		if trs, err = parseTracedPayload(payload, trs); err != nil {
			return trs, 0, err
		}
	default:
		return trs, 0, fmt.Errorf("%w: frame type %d in a datagram", ErrBadFrame, ftype)
	}
	return trs, HeaderSize + n, nil
}

// SplitMix64 spreads a counter into a well-distributed 64-bit id — the
// trace-id generator shared by the exporter client and the flight
// recorder's synthetic stream events.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
