package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestHandbackRoundTrip(t *testing.T) {
	body := []byte("victim-state snapshot payload")
	b := AppendHandback(nil, body)

	ftype, n, err := checkHeader(b)
	if err != nil {
		t.Fatalf("checkHeader: %v", err)
	}
	if ftype != TypeHandback {
		t.Fatalf("frame type = %d, want %d", ftype, TypeHandback)
	}
	got, err := ParseHandback(b[HeaderSize : HeaderSize+n])
	if err != nil {
		t.Fatalf("ParseHandback: %v", err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body = %q, want %q", got, body)
	}

	// Empty bodies are legal at the framing layer (the cluster codec
	// above rejects them on its own fixed-size check).
	if got, err := ParseHandback(AppendHandback(nil, nil)[HeaderSize:]); err != nil || len(got) != 0 {
		t.Fatalf("empty handback: body %q, err %v", got, err)
	}
}

func TestHandbackCorruptionDetected(t *testing.T) {
	b := AppendHandback(nil, []byte{9, 8, 7, 6})
	b[HeaderSize+2] ^= 0x40
	if _, err := ParseHandback(b[HeaderSize:]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupted handback frame parsed: err = %v", err)
	}
	// A payload shorter than the CRC tail is rejected at the header.
	short := appendHeader(nil, TypeHandback, 2)
	if _, _, err := checkHeader(append(short, 0, 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("undersized handback header accepted: err = %v", err)
	}
}

func TestReaderPassesHandbackFrames(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(AppendHandback(nil, []byte("hb")))
	r := NewReader(&buf)
	ftype, payload, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if ftype != TypeHandback {
		t.Fatalf("frame type = %d, want %d", ftype, TypeHandback)
	}
	if body, err := ParseHandback(payload); err != nil || string(body) != "hb" {
		t.Fatalf("payload %q, err %v", body, err)
	}
}
