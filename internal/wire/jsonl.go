package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/topology"
)

// JSONLConfig parameterizes ReadJSONL.
type JSONLConfig struct {
	// Topo is the TopoID stamped on records whose line does not carry
	// one (every trace line, and native lines without a "topo" key).
	Topo uint32

	// Victim filters trace "forward" lines: only hops INTO this node
	// are emitted, since a victim NIC only sees packets that reach it.
	// topology.None accepts every forward hop (useful for fan-in
	// experiments where every node runs an identifier).
	Victim topology.NodeID
}

// jsonlLine is the union of the two accepted shapes: the native record
// form {"t","topo","victim","mf","src","proto"} and internal/trace's
// forward events {"kind":"forward","seq","cur","next","mf_out","src"}.
type jsonlLine struct {
	// native record fields
	T      *int64  `json:"t"`
	Topo   *string `json:"topo"`
	Victim *int64  `json:"victim"`
	MF     *uint16 `json:"mf"`
	Proto  *uint8  `json:"proto"`

	// trace event fields
	Kind  string  `json:"kind"`
	Seq   uint64  `json:"seq"`
	Next  *int64  `json:"next"`
	MFOut *uint16 `json:"mf_out"`

	// shared
	Src string `json:"src"`
}

// ReadJSONL parses newline-delimited JSON records and calls fn for
// each. It accepts the native record shape and, for replaying existing
// simulator traces, internal/trace "forward" lines (the final hop into
// the victim is exactly the victim NIC's observation; "inject" lines
// and hops to other nodes are skipped). It returns the number of
// records emitted; a malformed line or an fn error aborts with the
// 1-based line number.
func ReadJSONL(r io.Reader, cfg JSONLConfig, fn func(Record) error) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	emitted, lineno := 0, 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var l jsonlLine
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			return emitted, fmt.Errorf("wire: jsonl line %d: %w", lineno, err)
		}
		rec, ok, err := l.toRecord(cfg)
		if err != nil {
			return emitted, fmt.Errorf("wire: jsonl line %d: %w", lineno, err)
		}
		if !ok {
			continue
		}
		if err := fn(rec); err != nil {
			return emitted, fmt.Errorf("wire: jsonl line %d: %w", lineno, err)
		}
		emitted++
	}
	if err := sc.Err(); err != nil {
		return emitted, fmt.Errorf("wire: jsonl line %d: %w", lineno, err)
	}
	return emitted, nil
}

func (l *jsonlLine) toRecord(cfg JSONLConfig) (Record, bool, error) {
	switch l.Kind {
	case "inject":
		return Record{}, false, nil // pre-fabric, not a NIC observation
	case "forward":
		if l.Next == nil || l.MFOut == nil {
			return Record{}, false, fmt.Errorf("forward line missing next/mf_out")
		}
		next := topology.NodeID(*l.Next)
		if cfg.Victim != topology.None && next != cfg.Victim {
			return Record{}, false, nil
		}
		src, err := packet.ParseAddr(l.Src)
		if err != nil {
			return Record{}, false, err
		}
		// Trace events carry no clock; the per-simulation sequence
		// number is monotone and serves as the replay timebase.
		return Record{
			T: eventq.Time(l.Seq), Topo: cfg.Topo, Victim: next,
			MF: *l.MFOut, Src: src, Proto: packet.ProtoRaw,
		}, true, nil
	case "":
		// native record shape
		if l.Victim == nil || l.MF == nil {
			return Record{}, false, fmt.Errorf("record line missing victim/mf")
		}
		rec := Record{Topo: cfg.Topo, Victim: topology.NodeID(*l.Victim), MF: *l.MF, Proto: packet.ProtoRaw}
		if l.T != nil {
			rec.T = eventq.Time(*l.T)
		}
		if l.Topo != nil {
			rec.Topo = TopoID(*l.Topo)
		}
		if l.Proto != nil {
			rec.Proto = packet.Proto(*l.Proto)
		}
		if l.Src != "" {
			src, err := packet.ParseAddr(l.Src)
			if err != nil {
				return Record{}, false, err
			}
			rec.Src = src
		}
		return rec, true, nil
	default:
		return Record{}, false, nil // unknown trace kinds are skipped
	}
}
