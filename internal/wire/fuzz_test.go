package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/topology"
)

// FuzzRecordRoundTrip checks Append/Decode are exact inverses for any
// field values (the reserved byte is the only non-carried bit).
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(int64(0), uint32(0), uint32(0), uint16(0), uint32(0), uint8(0))
	f.Add(int64(-1), ^uint32(0), ^uint32(0), ^uint16(0), ^uint32(0), ^uint8(0))
	f.Add(int64(1<<40), TopoID("torus-16x16"), uint32(255), uint16(0xA5A5), uint32(0x0A000001), uint8(6))
	f.Fuzz(func(t *testing.T, tick int64, topo, victim uint32, mf uint16, src uint32, proto uint8) {
		r := Record{
			T: eventq.Time(tick), Topo: topo,
			Victim: topology.NodeID(victim), MF: mf,
			Src: packet.Addr(src), Proto: packet.Proto(proto),
		}
		b := AppendRecord(nil, r)
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatal(err)
		}
		// NodeID is a signed int: the uint32 wire field round-trips
		// through the low 32 bits.
		r.Victim = topology.NodeID(uint32(r.Victim))
		if got != r {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
	})
}

// FuzzReader throws arbitrary bytes at the stream reader: it must
// never panic, must classify every failure as io.EOF or ErrBadFrame,
// and everything it does decode must re-encode to a parseable stream
// yielding the same records.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, nil))
	f.Add(AppendFrame(nil, []Record{{T: 1, Topo: 2, Victim: 3, MF: 4, Src: 5, Proto: 6}}))
	two := AppendFrame(nil, []Record{{MF: 1}, {MF: 2}})
	f.Add(append(two, AppendFrame(nil, []Record{{Victim: 9}})...))
	f.Add([]byte{0xD0, 0x5E, 1, 1, 0xFF, 0xFF})
	// Mid-stream garbage before a valid magic, and session frames.
	f.Add(append([]byte{0xDE, 0xAD, 0xD0, 0x00}, AppendFrame(nil, []Record{{MF: 3}})...))
	f.Add(append(AppendHello(nil, 7, 0), AppendSealed(nil, 0, []Record{{MF: 4}})...))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var decoded []Record
		for len(decoded) < 1<<16 {
			rec, err := r.Next()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			decoded = append(decoded, rec)
		}
		if len(decoded) == 0 {
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteRecords(decoded); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2 := NewReader(&buf)
		for i, want := range decoded {
			got, err := r2.Next()
			if err != nil {
				t.Fatalf("re-decode record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("re-decode record %d: got %+v want %+v", i, got, want)
			}
		}
	})
}

// FuzzTraceContext throws arbitrary bytes at the trace-aware reader:
// NextTraced must never panic, must classify failures like Next, and
// every traced record it decodes must re-encode to a byte-identical
// parse. Legacy frames (TypeRecords/TypeSealed, the pre-trace corpus
// shapes) must keep round-tripping with exactly zero trace contexts —
// the backward-compat contract of the extension.
func FuzzTraceContext(f *testing.F) {
	f.Add([]byte{})
	legacy := AppendFrame(nil, []Record{{T: 1, Topo: 2, Victim: 3, MF: 4, Src: 5, Proto: 6}})
	f.Add(legacy)
	f.Add(AppendSealed(nil, 0, []Record{{MF: 7}, {MF: 8}}))
	traced := []TracedRecord{
		{Record: Record{T: 1, MF: 2}, Ctx: TraceContext{ID: 3, Sent: 4}},
		{Record: Record{T: 5, MF: 6}},
	}
	f.Add(AppendTracedFrame(nil, traced))
	f.Add(AppendTracedSealed(nil, 9, traced))
	f.Add(append(AppendHelloFlags(nil, 1, 0, HelloFlagTrace), AppendTracedSealed(nil, 0, traced)...))
	f.Add(append(legacy, AppendTracedFrame(nil, traced)...))
	// Truncations and bit flips around the traced layouts.
	f.Add(AppendTracedFrame(nil, traced)[:HeaderSize+TracedRecordSize-1])
	damaged := AppendTracedSealed(nil, 9, traced)
	damaged[HeaderSize+10] ^= 0x80
	f.Add(damaged)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var decoded []TracedRecord
		for len(decoded) < 1<<16 {
			tr, err := r.NextTraced()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			decoded = append(decoded, tr)
		}
		if len(decoded) == 0 {
			return
		}
		// Re-encode everything as traced frames; the re-parse must be
		// exact, including the records that decoded with zero contexts.
		reenc := AppendTracedFrame(nil, decoded[:min(len(decoded), MaxTracedPerFrame)])
		got, _, err := ParseAnyFrame(reenc, nil)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		for i, want := range decoded[:min(len(decoded), MaxTracedPerFrame)] {
			if got[i] != want {
				t.Fatalf("re-parse record %d: got %+v want %+v", i, got[i], want)
			}
		}
	})
}

// FuzzResyncReader throws arbitrary bytes at the resync-enabled
// reader: it must never panic, must terminate (every resync consumes
// at least one byte), must never skip-count more bytes than exist, and
// whatever it decodes from frames embedded in garbage must round-trip.
func FuzzResyncReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xD0, 0xD0, 0x5E, 1, 1, 0x00})
	one := AppendFrame(nil, []Record{{T: 1, Topo: 2, Victim: 3, MF: 4, Src: 5, Proto: 6}})
	f.Add(append([]byte("mid-stream garbage"), one...))
	f.Add(append(append(append([]byte{}, one...), 0xFF, 0xD0, 0x5E, 0x00), one...))
	f.Add(append(AppendSealed(nil, 9, []Record{{MF: 8}}), 0xD0, 0x5E))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		r.EnableResync()
		decoded := 0
		for decoded < 1<<16 {
			_, err := r.Next()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			decoded++
		}
		if r.SkippedBytes() > uint64(len(data)) {
			t.Fatalf("skipped %d bytes of a %d-byte stream", r.SkippedBytes(), len(data))
		}
		if r.Resyncs() > uint64(len(data)) {
			t.Fatalf("%d resyncs on a %d-byte stream", r.Resyncs(), len(data))
		}
	})
}
