package wire

// Cluster extension: two frame types that let ddpmd instances talk to
// each other over the same framing exporters use.
//
// TypeForwarded is a sealed record batch relayed by a non-owning
// instance to the consistent-hash owner of the records' victims. It is
// a TypeSealed with an extra leading origin-instance id, so the owner
// can account forwarded ingest per origin and fleet counters still
// balance (records forwarded out by A == records forwarded in from A
// at their owners). Forwarding sessions are negotiated with
// HelloFlagForward; a server that does not echo the flag (cluster mode
// off) refuses the session and the forwarder backs off.
//
// TypeGossip carries an opaque anti-entropy payload (blocklist deltas,
// victim-state replicas, liveness) whose layout belongs to
// internal/cluster; the wire layer only frames and CRC-seals it.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// TypeForwarded is a sealed record batch relayed between cluster
	// instances: origin-instance id, cumulative sequence number,
	// records, CRC tail.
	TypeForwarded uint8 = 7

	// TypeGossip is a CRC-tailed opaque cluster anti-entropy payload.
	// Unlike session frames it is request/response on a dedicated
	// connection: the dialer sends one TypeGossip and reads one back.
	TypeGossip uint8 = 8

	// ForwardedOverhead is the non-record part of a TypeForwarded
	// payload: origin(8) + seq(8) leading, crc32(4) trailing.
	ForwardedOverhead = 20

	// GossipOverhead is the crc32(4) tail sealing a gossip payload.
	GossipOverhead = 4

	// HelloFlagForward, set in an extended hello's flags word, declares
	// the session will carry TypeForwarded frames from a peer instance.
	// The server echoes it only when running in cluster mode.
	HelloFlagForward uint32 = 1 << 1

	// MaxRecordsPerForwarded is the per-frame record capacity of a
	// forwarded frame under the 16-bit payload length.
	MaxRecordsPerForwarded = (MaxFramePayload - ForwardedOverhead) / RecordSize

	// MaxGossipBody is the largest gossip body that fits one frame.
	MaxGossipBody = MaxFramePayload - GossipOverhead
)

// AppendForwarded appends one forwarded session frame: the relaying
// instance's origin id, the cumulative index of recs[0] in the forward
// stream, and the records, CRC-sealed like AppendSealed. It panics past
// MaxRecordsPerForwarded — splitting is the Client's job.
func AppendForwarded(b []byte, origin, seq uint64, recs []Record) []byte {
	if len(recs) > MaxRecordsPerForwarded {
		panic(fmt.Sprintf("wire: %d records exceed the %d-record forwarded-frame limit", len(recs), MaxRecordsPerForwarded))
	}
	b = appendHeader(b, TypeForwarded, ForwardedOverhead+len(recs)*RecordSize)
	start := len(b)
	b = binary.BigEndian.AppendUint64(b, origin)
	b = binary.BigEndian.AppendUint64(b, seq)
	for _, r := range recs {
		b = AppendRecord(b, r)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

// ParseForwarded decodes a TypeForwarded payload, appending the records
// to recs (pass a reused slice's [:0] to avoid per-frame allocation).
func ParseForwarded(payload []byte, recs []Record) (origin, seq uint64, out []Record, err error) {
	if len(payload) < ForwardedOverhead || (len(payload)-ForwardedOverhead)%RecordSize != 0 {
		return 0, 0, nil, fmt.Errorf("%w: forwarded payload %d bytes", ErrBadFrame, len(payload))
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := binary.BigEndian.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return 0, 0, nil, fmt.Errorf("%w: forwarded crc mismatch", ErrBadFrame)
	}
	origin = binary.BigEndian.Uint64(body[0:8])
	seq = binary.BigEndian.Uint64(body[8:16])
	for off := 16; off < len(body); off += RecordSize {
		r, err := DecodeRecord(body[off:])
		if err != nil {
			return 0, 0, nil, err
		}
		recs = append(recs, r)
	}
	return origin, seq, recs, nil
}

// AppendGossip appends one TypeGossip frame sealing body with a CRC
// tail. It panics past MaxGossipBody — gossip senders cap their
// payloads instead of splitting.
func AppendGossip(b, body []byte) []byte {
	if len(body) > MaxGossipBody {
		panic(fmt.Sprintf("wire: %d-byte gossip body exceeds the %d-byte limit", len(body), MaxGossipBody))
	}
	b = appendHeader(b, TypeGossip, len(body)+GossipOverhead)
	b = append(b, body...)
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(body))
}

// ParseGossip verifies a TypeGossip payload's CRC tail and returns the
// body. The body aliases payload — copy it before the next ReadFrame.
func ParseGossip(payload []byte) ([]byte, error) {
	if len(payload) < GossipOverhead {
		return nil, fmt.Errorf("%w: gossip payload %d bytes", ErrBadFrame, len(payload))
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := binary.BigEndian.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("%w: gossip crc mismatch", ErrBadFrame)
	}
	return body, nil
}
