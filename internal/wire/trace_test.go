package wire

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{},
		{ID: 1, Sent: 2},
		{ID: ^uint64(0), Sent: -1},
		{ID: 0xDEADBEEF, Sent: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC).UnixNano()},
	}
	for _, tc := range cases {
		b := AppendTraceContext(nil, tc)
		if len(b) != TraceCtxSize {
			t.Fatalf("encoded %d bytes, want %d", len(b), TraceCtxSize)
		}
		got, err := DecodeTraceContext(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc {
			t.Fatalf("round trip %+v -> %+v", tc, got)
		}
	}
	if _, err := DecodeTraceContext(make([]byte, TraceCtxSize-1)); err == nil {
		t.Fatal("short trace context decoded")
	}
}

func testTracedRecords() []TracedRecord {
	return []TracedRecord{
		{Record: Record{T: 1, Topo: 2, Victim: 3, MF: 4, Src: 5, Proto: 6}, Ctx: TraceContext{ID: 7, Sent: 8}},
		{Record: Record{T: 9, Topo: 2, Victim: 1, MF: 0xA5A5, Src: 11, Proto: 17}},
		{Record: Record{MF: 1}, Ctx: TraceContext{ID: ^uint64(0), Sent: -5}},
	}
}

func TestTracedFrameRoundTrip(t *testing.T) {
	want := testTracedRecords()
	b := AppendTracedFrame(nil, want)
	got, consumed, err := ParseAnyFrame(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(b) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(b))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestParseAnyFrameLegacyRecordsGetZeroContext(t *testing.T) {
	recs := []Record{{T: 1, MF: 2}, {T: 3, MF: 4}}
	b := AppendFrame(nil, recs)
	got, _, err := ParseAnyFrame(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range got {
		if tr.Ctx != (TraceContext{}) {
			t.Fatalf("record %d: legacy frame produced context %+v", i, tr.Ctx)
		}
		if tr.Record != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, tr.Record, recs[i])
		}
	}
}

func TestTracedSealedRoundTrip(t *testing.T) {
	want := testTracedRecords()
	b := AppendTracedSealed(nil, 42, want)
	payload := b[HeaderSize:]
	seq, got, err := ParseTracedSealed(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("seq = %d, want 42", seq)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Any flipped byte must fail the CRC.
	corrupt := append([]byte(nil), payload...)
	corrupt[9] ^= 0x40
	if _, _, err := ParseTracedSealed(corrupt, nil); err == nil {
		t.Fatal("corrupted traced sealed payload parsed")
	}
}

func TestHelloAckFlagLayouts(t *testing.T) {
	// flags == 0 degrades to the byte-identical legacy layouts.
	if got, want := AppendHelloFlags(nil, 7, 9, 0), AppendHello(nil, 7, 9); !bytes.Equal(got, want) {
		t.Fatalf("flagless hello %x != legacy hello %x", got, want)
	}
	if got, want := AppendAckFlags(nil, 5, 0), AppendAck(nil, 5); !bytes.Equal(got, want) {
		t.Fatalf("flagless ack %x != legacy ack %x", got, want)
	}

	// Extended layouts round-trip stream id, base and flags.
	hb := AppendHelloFlags(nil, 7, 9, HelloFlagTrace)
	stream, base, flags, err := ParseHelloFlags(hb[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if stream != 7 || base != 9 || flags != HelloFlagTrace {
		t.Fatalf("extended hello decoded (%d, %d, %#x)", stream, base, flags)
	}
	ab := AppendAckFlags(nil, 11, HelloFlagTrace)
	count, aflags, err := ParseAckFlags(ab[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if count != 11 || aflags != HelloFlagTrace {
		t.Fatalf("extended ack decoded (%d, %#x)", count, aflags)
	}

	// Legacy payloads parse through the flag-aware parsers as flags 0.
	lh := AppendHello(nil, 3, 4)
	if _, _, flags, err := ParseHelloFlags(lh[HeaderSize:]); err != nil || flags != 0 {
		t.Fatalf("legacy hello via ParseHelloFlags: flags %#x err %v", flags, err)
	}
	la := AppendAck(nil, 6)
	if _, flags, err := ParseAckFlags(la[HeaderSize:]); err != nil || flags != 0 {
		t.Fatalf("legacy ack via ParseAckFlags: flags %#x err %v", flags, err)
	}

	// Corrupt extended CRCs are rejected.
	hb[HeaderSize] ^= 0x01
	if _, _, _, err := ParseHelloFlags(hb[HeaderSize:]); err == nil {
		t.Fatal("corrupted extended hello parsed")
	}
	ab[HeaderSize] ^= 0x01
	if _, _, err := ParseAckFlags(ab[HeaderSize:]); err == nil {
		t.Fatal("corrupted extended ack parsed")
	}
}

// TestReaderNextTracedMixedStream interleaves every record-bearing
// frame type on one stream: NextTraced must deliver all records in
// order, with contexts only where the wire carried them, and the legacy
// Next must keep working on the same stream shapes.
func TestReaderNextTracedMixedStream(t *testing.T) {
	traced := testTracedRecords()
	plain := []Record{{T: 100, MF: 1}, {T: 101, MF: 2}}
	var stream []byte
	stream = AppendFrame(stream, plain)
	stream = AppendTracedFrame(stream, traced)
	stream = AppendSealed(stream, 0, plain)
	stream = AppendTracedSealed(stream, 2, traced)

	r := NewReader(bytes.NewReader(stream))
	var got []TracedRecord
	for {
		tr, err := r.NextTraced()
		if err != nil {
			break
		}
		got = append(got, tr)
	}
	var want []TracedRecord
	for _, rec := range plain {
		want = append(want, TracedRecord{Record: rec})
	}
	want = append(want, traced...)
	for _, rec := range plain {
		want = append(want, TracedRecord{Record: rec})
	}
	want = append(want, traced...)
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// The context-blind Next sees the same records, contexts dropped.
	r2 := NewReader(bytes.NewReader(stream))
	for i := range want {
		rec, err := r2.Next()
		if err != nil {
			t.Fatalf("Next record %d: %v", i, err)
		}
		if rec != want[i].Record {
			t.Fatalf("Next record %d: got %+v want %+v", i, rec, want[i].Record)
		}
	}
}

// traceServer is a minimal session server that can either honor or
// ignore the trace hello flag, recording which frame types and trace
// ids arrive.
type traceServer struct {
	t         *testing.T
	ln        net.Listener
	echoTrace bool

	mu     sync.Mutex
	count  uint64
	got    []TracedRecord
	ftypes map[uint8]int
}

func startTraceServer(t *testing.T, echoTrace bool) *traceServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &traceServer{t: t, ln: ln, echoTrace: echoTrace, ftypes: make(map[uint8]int)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.handle(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *traceServer) handle(conn net.Conn) {
	defer conn.Close()
	r := NewReader(conn)
	var scratch []byte
	var ackFlags uint32
	ingest := func(seq uint64, batch []TracedRecord) uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if skip := int(s.count - seq); skip >= 0 && skip < len(batch) {
			s.got = append(s.got, batch[skip:]...)
			s.count = seq + uint64(len(batch))
		}
		return s.count
	}
	for {
		ftype, payload, err := r.ReadFrame()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.ftypes[ftype]++
		s.mu.Unlock()
		switch ftype {
		case TypeHello:
			_, base, flags, err := ParseHelloFlags(payload)
			if err != nil {
				return
			}
			if s.echoTrace {
				ackFlags = flags & HelloFlagTrace
			}
			s.mu.Lock()
			if s.count < base {
				s.count = base
			}
			c := s.count
			s.mu.Unlock()
			scratch = AppendAckFlags(scratch[:0], c, ackFlags)
			if _, err := conn.Write(scratch); err != nil {
				return
			}
		case TypeSealed:
			seq, batch, err := ParseSealed(payload, nil)
			if err != nil {
				return
			}
			trs := make([]TracedRecord, len(batch))
			for i, rec := range batch {
				trs[i] = TracedRecord{Record: rec}
			}
			scratch = AppendAckFlags(scratch[:0], ingest(seq, trs), ackFlags)
			if _, err := conn.Write(scratch); err != nil {
				return
			}
		case TypeTracedSealed:
			seq, batch, err := ParseTracedSealed(payload, nil)
			if err != nil {
				return
			}
			scratch = AppendAckFlags(scratch[:0], ingest(seq, batch), ackFlags)
			if _, err := conn.Write(scratch); err != nil {
				return
			}
		default:
			return
		}
	}
}

func (s *traceServer) snapshot() (got []TracedRecord, ftypes map[uint8]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ft := make(map[uint8]int, len(s.ftypes))
	for k, v := range s.ftypes {
		ft[k] = v
	}
	return append([]TracedRecord(nil), s.got...), ft
}

// TestClientTraceNegotiation covers both halves of the handshake: a
// server that echoes the trace flag receives traced sealed frames with
// the deterministic SplitMix64 id sequence, and one that ignores the
// flag receives plain sealed frames — same records, no ids, no protocol
// error.
func TestClientTraceNegotiation(t *testing.T) {
	recs := []Record{{T: 1, MF: 10}, {T: 2, MF: 20}, {T: 3, MF: 30}}
	for _, echo := range []bool{true, false} {
		s := startTraceServer(t, echo)
		now := int64(12345)
		c, err := NewClient(ClientConfig{
			Addr: s.ln.Addr().String(), Seed: 7,
			MaxAttempts: 3, Trace: true,
			NowNano: func() int64 { return now },
		})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		if err := c.Send(recs); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("echo=%v: close: %v", echo, err)
		}
		got, ftypes := s.snapshot()
		if len(got) != len(recs) {
			t.Fatalf("echo=%v: delivered %d records, want %d", echo, len(got), len(recs))
		}
		for i, tr := range got {
			if tr.Record != recs[i] {
				t.Fatalf("echo=%v: record %d: got %+v want %+v", echo, i, tr.Record, recs[i])
			}
			if echo {
				if want := c.TraceIDAt(uint64(i)); tr.Ctx.ID != want {
					t.Fatalf("record %d: trace id %#x, want %#x", i, tr.Ctx.ID, want)
				}
				if tr.Ctx.Sent != now {
					t.Fatalf("record %d: sent %d, want %d", i, tr.Ctx.Sent, now)
				}
			} else if tr.Ctx != (TraceContext{}) {
				t.Fatalf("record %d: context %+v on a non-negotiated session", i, tr.Ctx)
			}
		}
		if echo && ftypes[TypeTracedSealed] == 0 {
			t.Fatal("negotiated session sent no traced sealed frames")
		}
		if !echo && ftypes[TypeTracedSealed] != 0 {
			t.Fatal("non-negotiated session sent traced sealed frames")
		}
		if !echo && ftypes[TypeSealed] == 0 {
			t.Fatal("non-negotiated session sent no plain sealed frames")
		}
	}
}
