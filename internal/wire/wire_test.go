package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/topology"
)

func sampleRecords(n int) []Record {
	topo := TopoID("torus-8x8")
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			T: eventq.Time(100 + i), Topo: topo,
			Victim: topology.NodeID(i % 64),
			MF:     uint16(i * 257),
			Src:    packet.AddrFrom4(10, 0, byte(i>>8), byte(i)),
			Proto:  packet.ProtoTCPSYN,
		}
	}
	return recs
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range sampleRecords(10) {
		b := AppendRecord(nil, r)
		if len(b) != RecordSize {
			t.Fatalf("encoded %d bytes, want %d", len(b), RecordSize)
		}
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
	}
}

func TestFrameRoundTripAndStreamReader(t *testing.T) {
	recs := sampleRecords(2 * MaxRecordsPerFrame / 3 * 2) // forces 2 frames via Writer
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecords(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != uint64(len(recs)) {
		t.Fatalf("writer counted %d records, want %d", w.Records(), len(recs))
	}
	if w.Frames() < 2 {
		t.Fatalf("expected multi-frame split, got %d frames", w.Frames())
	}
	r := NewReader(&buf)
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF at frame boundary, got %v", err)
	}
}

func TestParseFrameDatagram(t *testing.T) {
	recs := sampleRecords(5)
	b := AppendFrame(nil, recs)
	got, n, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestFramingErrors(t *testing.T) {
	good := AppendFrame(nil, sampleRecords(2))
	cases := map[string][]byte{
		"short header":      good[:3],
		"bad magic":         append([]byte{0, 0}, good[2:]...),
		"bad version":       append(append([]byte{}, good[:2]...), append([]byte{99}, good[3:]...)...),
		"bad type":          append(append([]byte{}, good[:3]...), append([]byte{7}, good[4:]...)...),
		"misaligned length": append(append([]byte{}, good[:4]...), append([]byte{0, 5}, good[6:]...)...),
		"truncated payload": good[:HeaderSize+RecordSize-1],
	}
	for name, b := range cases {
		if _, _, err := ParseFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want ErrBadFrame, got %v", name, err)
		}
	}
	// Stream reader: EOF mid-frame must not look like a clean end.
	r := NewReader(bytes.NewReader(good[:HeaderSize+RecordSize-1]))
	if _, err := r.Next(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("stream truncation: want ErrBadFrame, got %v", err)
	}
}

func TestTopoIDStableAndDistinct(t *testing.T) {
	if TopoID("mesh-8x8") != TopoID("mesh-8x8") {
		t.Fatal("TopoID not deterministic")
	}
	if TopoID("mesh-8x8") == TopoID("torus-8x8") {
		t.Fatal("TopoID collision between distinct names")
	}
}

func TestReadJSONLNativeShape(t *testing.T) {
	in := `
{"t":5,"topo":"mesh-8x8","victim":63,"mf":513,"src":"10.0.0.7","proto":6}
# comment lines and blanks are skipped

{"victim":1,"mf":2}
`
	var got []Record
	n, err := ReadJSONL(strings.NewReader(in), JSONLConfig{Topo: TopoID("fallback"), Victim: topology.None},
		func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(got) != 2 {
		t.Fatalf("emitted %d records, want 2", n)
	}
	want0 := Record{T: 5, Topo: TopoID("mesh-8x8"), Victim: 63, MF: 513,
		Src: packet.AddrFrom4(10, 0, 0, 7), Proto: packet.ProtoTCPSYN}
	if got[0] != want0 {
		t.Fatalf("got %+v want %+v", got[0], want0)
	}
	if got[1].Topo != TopoID("fallback") || got[1].Proto != packet.ProtoRaw {
		t.Fatalf("defaults not applied: %+v", got[1])
	}
}

func TestReadJSONLTraceShapeFiltersVictim(t *testing.T) {
	// Two forward hops of one packet plus its inject line: only the
	// hop INTO node 5 is an observation at victim 5.
	in := `{"kind":"inject","seq":9,"node":0,"mf_in":0,"mf_out":0,"ttl":64,"src":"10.0.0.1","dst":"10.0.0.6"}
{"kind":"forward","seq":9,"cur":0,"next":1,"mf_in":0,"mf_out":1,"ttl":64,"src":"10.0.0.1","dst":"10.0.0.6"}
{"kind":"forward","seq":9,"cur":1,"next":5,"mf_in":1,"mf_out":2,"ttl":63,"src":"10.0.0.1","dst":"10.0.0.6"}`
	var got []Record
	topo := TopoID("mesh-2x4")
	n, err := ReadJSONL(strings.NewReader(in), JSONLConfig{Topo: topo, Victim: 5},
		func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("emitted %d records, want 1", n)
	}
	want := Record{T: 9, Topo: topo, Victim: 5, MF: 2,
		Src: packet.AddrFrom4(10, 0, 0, 1), Proto: packet.ProtoRaw}
	if got[0] != want {
		t.Fatalf("got %+v want %+v", got[0], want)
	}
}

func TestReadJSONLBadLineReportsLineNumber(t *testing.T) {
	in := "{\"victim\":1,\"mf\":2}\nnot json\n"
	_, err := ReadJSONL(strings.NewReader(in), JSONLConfig{Victim: topology.None}, func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}
