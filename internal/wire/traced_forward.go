package wire

// Traced forwarding extension: the cluster sibling of TypeForwarded
// that keeps each record's trace context across the forward hop. A
// non-owning instance that ingested a traced record relays it to the
// consistent-hash owner of the record's victim without dropping the
// trace id or the exporter's original send timestamp, and adds the
// route timestamp taken when the relay decided to forward — the owner
// stitches a `forward` span (route → queue → wire → remote ingest)
// into the record's timeline and can still observe true send-to-block
// latency across the hop.
//
// Negotiation mirrors the existing flags: a forwarding session client
// sets HelloFlagForward|HelloFlagTrace in its hello, and sends
// TypeTracedForwarded only when the server echoed BOTH. A server that
// echoes forwarding but not tracing gets plain TypeForwarded frames —
// records are delivered unchanged, contexts are shed (the clean
// downgrade the trace extension has always promised). Legacy peers and
// existing fuzz corpora parse unchanged: this is a new frame type, not
// a change to any existing layout.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// TypeTracedForwarded is a forwarded session frame whose records
	// carry a forward-hop trace context: origin-instance id, cumulative
	// sequence number, N×(record + id + sent + routed), CRC tail.
	TypeTracedForwarded uint8 = 10

	// TracedForwardedOverhead is the non-record part of the payload:
	// origin(8) + seq(8) leading, crc32(4) trailing.
	TracedForwardedOverhead = 20

	// FwdCtxSize is the per-record forward-hop context: trace id(8) +
	// exporter send time(8) + origin route time(8). It is wider than
	// the exporter-facing TraceCtxSize because the hop adds the route
	// timestamp the owner needs for the forward span.
	FwdCtxSize = 24

	// TracedFwdRecordSize is one record plus its forward-hop context.
	TracedFwdRecordSize = RecordSize + FwdCtxSize

	// MaxTracedPerForwarded is the per-frame record capacity of a
	// traced forwarded frame under the 16-bit payload length.
	MaxTracedPerForwarded = (MaxFramePayload - TracedForwardedOverhead) / TracedFwdRecordSize
)

// AppendTracedForwarded appends one traced forwarded session frame:
// the relaying instance's origin id, the cumulative index of trs[0] in
// the forward stream, and the records each followed by its forward-hop
// context (id, sent, routed), CRC-sealed like AppendForwarded. It
// panics past MaxTracedPerForwarded — splitting is the Client's job.
func AppendTracedForwarded(b []byte, origin, seq uint64, trs []TracedRecord) []byte {
	if len(trs) > MaxTracedPerForwarded {
		panic(fmt.Sprintf("wire: %d records exceed the %d-record traced-forwarded-frame limit", len(trs), MaxTracedPerForwarded))
	}
	b = appendHeader(b, TypeTracedForwarded, TracedForwardedOverhead+len(trs)*TracedFwdRecordSize)
	start := len(b)
	b = binary.BigEndian.AppendUint64(b, origin)
	b = binary.BigEndian.AppendUint64(b, seq)
	for _, tr := range trs {
		b = AppendRecord(b, tr.Record)
		b = binary.BigEndian.AppendUint64(b, tr.Ctx.ID)
		b = binary.BigEndian.AppendUint64(b, uint64(tr.Ctx.Sent))
		b = binary.BigEndian.AppendUint64(b, uint64(tr.Ctx.Routed))
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

// ParseTracedForwarded decodes a TypeTracedForwarded payload, appending
// the traced records to trs (pass a reused slice's [:0] to avoid
// per-frame allocation). Each decoded context carries the frame-level
// origin id in Ctx.Origin so per-record consumers don't need to thread
// it separately.
func ParseTracedForwarded(payload []byte, trs []TracedRecord) (origin, seq uint64, out []TracedRecord, err error) {
	if len(payload) < TracedForwardedOverhead || (len(payload)-TracedForwardedOverhead)%TracedFwdRecordSize != 0 {
		return 0, 0, nil, fmt.Errorf("%w: traced forwarded payload %d bytes", ErrBadFrame, len(payload))
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := binary.BigEndian.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return 0, 0, nil, fmt.Errorf("%w: traced forwarded crc mismatch", ErrBadFrame)
	}
	origin = binary.BigEndian.Uint64(body[0:8])
	seq = binary.BigEndian.Uint64(body[8:16])
	for off := 16; off < len(body); off += TracedFwdRecordSize {
		rec, err := DecodeRecord(body[off:])
		if err != nil {
			return 0, 0, nil, err
		}
		trs = append(trs, TracedRecord{
			Record: rec,
			Ctx: TraceContext{
				ID:     binary.BigEndian.Uint64(body[off+RecordSize : off+RecordSize+8]),
				Sent:   int64(binary.BigEndian.Uint64(body[off+RecordSize+8 : off+RecordSize+16])),
				Routed: int64(binary.BigEndian.Uint64(body[off+RecordSize+16 : off+RecordSize+24])),
				Origin: origin,
			},
		})
	}
	return origin, seq, trs, nil
}
