package wire

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// sessionServer is a minimal in-process implementation of the daemon's
// session protocol: hello → ack, sealed → dedup + ack, with optional
// connection kills to force the client through its reconnect path.
type sessionServer struct {
	t  *testing.T
	ln net.Listener

	killEveryFrames int // close each conn after this many sealed frames (0 = never)

	mu    sync.Mutex
	count uint64
	got   []Record
	conns int
	live  map[net.Conn]struct{}
}

// stop closes the listener and every live connection — a full server
// death, not just an accept freeze.
func (s *sessionServer) stop() {
	s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.live {
		c.Close()
	}
}

func startSessionServer(t *testing.T, killEveryFrames int) *sessionServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &sessionServer{t: t, ln: ln, killEveryFrames: killEveryFrames, live: make(map[net.Conn]struct{})}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns++
			s.live[conn] = struct{}{}
			s.mu.Unlock()
			go s.handle(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *sessionServer) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.live, conn)
		s.mu.Unlock()
	}()
	r := NewReader(conn)
	frames := 0
	var scratch []byte
	var recs []Record
	for {
		ftype, payload, err := r.ReadFrame()
		if err != nil {
			return
		}
		switch ftype {
		case TypeHello:
			_, base, err := ParseHello(payload)
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.count < base {
				s.count = base
			}
			c := s.count
			s.mu.Unlock()
			scratch = AppendAck(scratch[:0], c)
			if _, err := conn.Write(scratch); err != nil {
				return
			}
		case TypeSealed:
			seq, batch, err := ParseSealed(payload, recs[:0])
			if err != nil {
				return
			}
			recs = batch[:0]
			s.mu.Lock()
			if seq > s.count {
				s.mu.Unlock()
				return // gap: protocol violation
			}
			if skip := int(s.count - seq); skip < len(batch) {
				s.got = append(s.got, batch[skip:]...)
				s.count = seq + uint64(len(batch))
			}
			c := s.count
			s.mu.Unlock()
			scratch = AppendAck(scratch[:0], c)
			if _, err := conn.Write(scratch); err != nil {
				return
			}
			frames++
			if s.killEveryFrames > 0 && frames >= s.killEveryFrames {
				return // injected mid-stream disconnect
			}
		default:
			return
		}
	}
}

func (s *sessionServer) snapshot() (count uint64, got []Record, conns int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, append([]Record(nil), s.got...), s.conns
}

func TestClientDeliversExactlyOnceThroughDisconnects(t *testing.T) {
	// The server kills every connection after 2 sealed frames: the
	// client must reconnect, learn the acked count, resend the rest,
	// and the server must end up with every record exactly once, in
	// order.
	s := startSessionServer(t, 2)
	recs := plainRecords(1000)
	cfg := ClientConfig{
		Addr: s.ln.Addr().String(), Seed: 7,
		MaxBatch: 64, MaxAttempts: 10,
		BackoffBase: 1, BackoffMax: 1,
		Sleep: func(time.Duration) {},
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	for i := 0; i < len(recs); i += 100 {
		if err := c.Send(recs[i : i+100]); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	count, got, conns := s.snapshot()
	if count != uint64(len(recs)) {
		t.Fatalf("server count %d, want %d", count, len(recs))
	}
	if len(got) != len(recs) {
		t.Fatalf("server got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
	if conns < 2 {
		t.Errorf("expected forced reconnects, server saw %d conns", conns)
	}
	if c.Sent() != uint64(len(recs)) || c.Lost() != 0 || c.Delivered() != uint64(len(recs)) {
		t.Errorf("counters: sent=%d lost=%d delivered=%d", c.Sent(), c.Lost(), c.Delivered())
	}
	if c.Reconnects() == 0 {
		t.Error("no reconnects counted despite killed connections")
	}
	if c.Resent() == 0 {
		t.Error("no resent records counted despite mid-frame kills")
	}
	// The exactly-once invariant, verbatim.
	if c.Sent()-c.Lost() != count {
		t.Errorf("sent(%d) - lost(%d) != server accepted(%d)", c.Sent(), c.Lost(), count)
	}
}

func TestClientShedsCountedWhenUnreachable(t *testing.T) {
	var lost []Record
	dialErr := errors.New("no route")
	c, nerr := NewClient(ClientConfig{
		Dial:          func() (net.Conn, error) { return nil, dialErr },
		Seed:          3,
		BufferRecords: 100,
		MaxBatch:      50,
		MaxAttempts:   2,
		BackoffBase:   1, BackoffMax: 1,
		Sleep:  func(time.Duration) {},
		OnLost: func(r Record) { lost = append(lost, r) },
	})
	if nerr != nil {
		t.Fatalf("NewClient: %v", nerr)
	}
	recs := plainRecords(250)
	err := c.Send(recs)
	if err == nil {
		t.Fatal("Send reported success while shedding")
	}
	closeErr := c.Close()
	if closeErr == nil {
		t.Fatal("Close hid abandoned records")
	}
	if c.Sent() != 250 {
		t.Errorf("sent = %d, want 250", c.Sent())
	}
	if c.Lost() != 250 || len(lost) != 250 {
		t.Errorf("lost = %d (OnLost saw %d), want 250", c.Lost(), len(lost))
	}
	if c.Delivered() != 0 {
		t.Errorf("delivered = %d, want 0", c.Delivered())
	}
	// Every abandoned record was reported, none silently.
	seen := make(map[Record]int)
	for _, r := range lost {
		seen[r]++
	}
	for _, r := range recs {
		if seen[r] == 0 {
			t.Fatalf("record %+v lost without OnLost", r)
		}
		seen[r]--
	}
	if err := c.Send(recs[:1]); !errors.Is(err, ErrClientClosed) {
		t.Errorf("Send after Close: %v, want ErrClientClosed", err)
	}
}

func TestClientResumesAcrossServerRestart(t *testing.T) {
	// First server accepts some records, then vanishes; a fresh server
	// (empty session table) takes over at a new address. The hello's
	// base fast-forwards the new server so buffered records flow and
	// nothing is double-counted or lost from the client's view.
	s1 := startSessionServer(t, 0)
	var mu sync.Mutex
	addr := s1.ln.Addr().String()
	dial := func() (net.Conn, error) {
		mu.Lock()
		a := addr
		mu.Unlock()
		return net.Dial("tcp", a)
	}
	c, err := NewClient(ClientConfig{
		Dial: dial, Seed: 11,
		MaxBatch: 32, MaxAttempts: 20,
		BackoffBase: 1, BackoffMax: 1,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	recs := plainRecords(200)
	if err := c.Send(recs[:100]); err != nil {
		t.Fatal(err)
	}
	count1, _, _ := s1.snapshot()
	if count1 != 100 {
		t.Fatalf("first server accepted %d, want 100", count1)
	}
	s1.stop()

	s2 := startSessionServer(t, 0)
	mu.Lock()
	addr = s2.ln.Addr().String()
	mu.Unlock()
	if err := c.Send(recs[100:]); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	count2, got2, _ := s2.snapshot()
	// The new server starts at the client's base (100) and accepts
	// exactly the second half.
	if count2 != 200 {
		t.Fatalf("second server count %d, want 200", count2)
	}
	if len(got2) != 100 || got2[0] != recs[100] || got2[99] != recs[199] {
		t.Fatalf("second server got %d records, want the last 100", len(got2))
	}
	if c.Lost() != 0 || c.Delivered() != 200 {
		t.Errorf("counters after restart: lost=%d delivered=%d", c.Lost(), c.Delivered())
	}
}
