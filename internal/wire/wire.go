// Package wire defines the compact binary format `ddpmd` ingests: one
// Record per marked packet observed at a victim NIC (topology id,
// victim node, marking field, claimed header source), batched into
// versioned frames. The format is the daemon's contract with exporters:
// length-prefixed frames over TCP streams, one frame per datagram over
// UDP, and a JSONL replay reader so offline `trace` output (or
// hand-written records) can be fed through the same pipeline.
//
// A Record is deliberately tiny (24 bytes): the paper's whole premise
// is that single-packet identification needs only the 16-bit MF plus
// the victim's own coordinate, so the export path stays cheap enough
// to run per packet on a loaded NIC.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"

	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/topology"
)

// Wire constants. Magic guards against a stray client speaking the
// wrong protocol; Version is bumped on incompatible layout changes.
const (
	Magic   uint16 = 0xD05E
	Version uint8  = 1

	// TypeRecords is a bare record batch — the original exporter
	// format, still what UDP datagrams and one-shot TCP streams carry.
	TypeRecords uint8 = 1

	// TypeHello opens a resumable exporter session: the client names a
	// stream id and the cumulative record count it has buffered from,
	// and the server replies with a TypeAck carrying how many records
	// of that stream it has already accepted. CRC-tailed.
	TypeHello uint8 = 2

	// TypeAck is the server's cumulative accepted-record count for the
	// connection's session stream. CRC-tailed.
	TypeAck uint8 = 3

	// TypeSealed is a session record batch: a cumulative sequence
	// number plus records, CRC-tailed so corruption is detected rather
	// than silently tallied. Sequence numbers make retransmits after a
	// reconnect exactly-once: the server skips the already-accepted
	// prefix.
	TypeSealed uint8 = 4

	// HeaderSize is the frame header: magic(2) version(1) type(1)
	// payload-length(2), big-endian throughout.
	HeaderSize = 6

	// RecordSize is the fixed encoded size of one Record.
	RecordSize = 24

	// HelloPayloadSize is streamID(8) + base(8) + crc32(4).
	HelloPayloadSize = 20

	// AckPayloadSize is count(8) + crc32(4).
	AckPayloadSize = 12

	// SealedOverhead is the non-record part of a TypeSealed payload:
	// seq(8) leading + crc32(4) trailing.
	SealedOverhead = 12

	// MaxFramePayload is the largest payload a frame can carry (the
	// length field is 16-bit); the per-type record capacities follow.
	MaxFramePayload     = 1<<16 - 1
	MaxRecordsPerFrame  = MaxFramePayload / RecordSize
	MaxRecordsPerSealed = (MaxFramePayload - SealedOverhead) / RecordSize

	// MaxEmptyFrames caps how many consecutive zero-record frames a
	// Reader tolerates before declaring the peer abusive: each empty
	// frame is 6 valid bytes of zero progress, so an unbounded run
	// would spin the read loop forever with no accounting.
	MaxEmptyFrames = 16
)

// ErrBadFrame tags every framing-level decode failure (bad magic,
// unknown version or type, misaligned payload, CRC mismatch). Callers
// distinguish it from io errors with errors.Is.
var ErrBadFrame = errors.New("wire: bad frame")

// ErrEmptyFlood is returned (wrapping ErrBadFrame) when a peer streams
// more than MaxEmptyFrames consecutive empty frames.
var ErrEmptyFlood = fmt.Errorf("%w: empty-frame flood", ErrBadFrame)

// Record is one observed marked packet at a victim.
//
// Encoded layout (big-endian, 24 bytes):
//
//	[0:8)   T       int64   observation time in simulator ticks
//	[8:12)  Topo    uint32  TopoID of the fabric the MF was marked in
//	[12:16) Victim  uint32  victim NodeID (the observing NIC's node)
//	[16:18) MF      uint16  marking field (IP Identification)
//	[18:22) Src     uint32  claimed (spoofable) header source address
//	[22]    Proto   uint8   transport protocol
//	[23]    —       uint8   reserved, must encode as zero
type Record struct {
	T      eventq.Time
	Topo   uint32
	Victim topology.NodeID
	MF     uint16
	Src    packet.Addr
	Proto  packet.Proto
}

// TopoID derives the 32-bit topology identifier carried on the wire
// from a topology's Name() (e.g. "torus-8x8"), so daemon and exporter
// can cheaply agree they are talking about the same fabric without
// shipping the dimension list per record.
func TopoID(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// AppendRecord appends r's 24-byte encoding to b.
func AppendRecord(b []byte, r Record) []byte {
	var buf [RecordSize]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(r.T))
	binary.BigEndian.PutUint32(buf[8:12], r.Topo)
	binary.BigEndian.PutUint32(buf[12:16], uint32(r.Victim))
	binary.BigEndian.PutUint16(buf[16:18], r.MF)
	binary.BigEndian.PutUint32(buf[18:22], uint32(r.Src))
	buf[22] = uint8(r.Proto)
	buf[23] = 0
	return append(b, buf[:]...)
}

// DecodeRecord decodes one record from the first RecordSize bytes of b.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < RecordSize {
		return Record{}, fmt.Errorf("%w: short record: %d bytes", ErrBadFrame, len(b))
	}
	return Record{
		T:      eventq.Time(binary.BigEndian.Uint64(b[0:8])),
		Topo:   binary.BigEndian.Uint32(b[8:12]),
		Victim: topology.NodeID(binary.BigEndian.Uint32(b[12:16])),
		MF:     binary.BigEndian.Uint16(b[16:18]),
		Src:    packet.Addr(binary.BigEndian.Uint32(b[18:22])),
		Proto:  packet.Proto(b[22]),
	}, nil
}

// AppendFrame appends one frame holding recs to b. It panics if recs
// exceeds MaxRecordsPerFrame — splitting across frames is the Writer's
// job.
func AppendFrame(b []byte, recs []Record) []byte {
	if len(recs) > MaxRecordsPerFrame {
		panic(fmt.Sprintf("wire: %d records exceed the %d-record frame limit", len(recs), MaxRecordsPerFrame))
	}
	b = appendHeader(b, TypeRecords, len(recs)*RecordSize)
	for _, r := range recs {
		b = AppendRecord(b, r)
	}
	return b
}

// ParseFrame decodes a complete TypeRecords frame held in b — the UDP
// entry point. A datagram may carry several frames back to back, so it
// returns the decoded records and the number of bytes consumed;
// callers loop until the datagram is exhausted.
func ParseFrame(b []byte) ([]Record, int, error) {
	ftype, n, err := checkHeader(b)
	if err != nil {
		return nil, 0, err
	}
	if ftype != TypeRecords {
		return nil, 0, fmt.Errorf("%w: frame type %d in a datagram", ErrBadFrame, ftype)
	}
	if len(b) < HeaderSize+n {
		return nil, 0, fmt.Errorf("%w: truncated payload: have %d of %d bytes",
			ErrBadFrame, len(b)-HeaderSize, n)
	}
	recs := make([]Record, 0, n/RecordSize)
	for off := HeaderSize; off < HeaderSize+n; off += RecordSize {
		r, err := DecodeRecord(b[off:])
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, r)
	}
	return recs, HeaderSize + n, nil
}

// appendHeader appends a 6-byte frame header for ftype with an n-byte
// payload.
func appendHeader(b []byte, ftype uint8, n int) []byte {
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = ftype
	binary.BigEndian.PutUint16(hdr[4:6], uint16(n))
	return append(b, hdr[:]...)
}

// AppendHello appends a session-open frame: the exporter's stream id
// and the cumulative record count its buffer starts at (records below
// base are gone from the exporter and can never be retransmitted; a
// server that has not seen this stream fast-forwards to base).
func AppendHello(b []byte, streamID, base uint64) []byte {
	b = appendHeader(b, TypeHello, HelloPayloadSize)
	var p [HelloPayloadSize]byte
	binary.BigEndian.PutUint64(p[0:8], streamID)
	binary.BigEndian.PutUint64(p[8:16], base)
	binary.BigEndian.PutUint32(p[16:20], crc32.ChecksumIEEE(p[:16]))
	return append(b, p[:]...)
}

// ParseHello decodes a TypeHello payload.
func ParseHello(payload []byte) (streamID, base uint64, err error) {
	if len(payload) != HelloPayloadSize {
		return 0, 0, fmt.Errorf("%w: hello payload %d bytes", ErrBadFrame, len(payload))
	}
	if got := binary.BigEndian.Uint32(payload[16:20]); got != crc32.ChecksumIEEE(payload[:16]) {
		return 0, 0, fmt.Errorf("%w: hello crc mismatch", ErrBadFrame)
	}
	return binary.BigEndian.Uint64(payload[0:8]), binary.BigEndian.Uint64(payload[8:16]), nil
}

// AppendAck appends the server→client cumulative-accepted frame.
func AppendAck(b []byte, count uint64) []byte {
	b = appendHeader(b, TypeAck, AckPayloadSize)
	var p [AckPayloadSize]byte
	binary.BigEndian.PutUint64(p[0:8], count)
	binary.BigEndian.PutUint32(p[8:12], crc32.ChecksumIEEE(p[:8]))
	return append(b, p[:]...)
}

// ParseAck decodes a TypeAck payload.
func ParseAck(payload []byte) (count uint64, err error) {
	if len(payload) != AckPayloadSize {
		return 0, fmt.Errorf("%w: ack payload %d bytes", ErrBadFrame, len(payload))
	}
	if got := binary.BigEndian.Uint32(payload[8:12]); got != crc32.ChecksumIEEE(payload[:8]) {
		return 0, fmt.Errorf("%w: ack crc mismatch", ErrBadFrame)
	}
	return binary.BigEndian.Uint64(payload[0:8]), nil
}

// AppendSealed appends one session record frame: seq is the cumulative
// index of recs[0] in the stream, and the CRC seals seq plus every
// record byte so in-flight corruption is detected instead of tallied.
// It panics if recs exceeds MaxRecordsPerSealed — splitting is the
// Client's job.
func AppendSealed(b []byte, seq uint64, recs []Record) []byte {
	if len(recs) > MaxRecordsPerSealed {
		panic(fmt.Sprintf("wire: %d records exceed the %d-record sealed-frame limit", len(recs), MaxRecordsPerSealed))
	}
	b = appendHeader(b, TypeSealed, SealedOverhead+len(recs)*RecordSize)
	start := len(b)
	b = binary.BigEndian.AppendUint64(b, seq)
	for _, r := range recs {
		b = AppendRecord(b, r)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

// ParseSealed decodes a TypeSealed payload, appending the records to
// recs (pass a reused slice's [:0] to avoid per-frame allocation).
func ParseSealed(payload []byte, recs []Record) (seq uint64, out []Record, err error) {
	if len(payload) < SealedOverhead || (len(payload)-SealedOverhead)%RecordSize != 0 {
		return 0, nil, fmt.Errorf("%w: sealed payload %d bytes", ErrBadFrame, len(payload))
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := binary.BigEndian.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return 0, nil, fmt.Errorf("%w: sealed crc mismatch", ErrBadFrame)
	}
	seq = binary.BigEndian.Uint64(body[0:8])
	for off := 8; off < len(body); off += RecordSize {
		r, err := DecodeRecord(body[off:])
		if err != nil {
			return 0, nil, err
		}
		recs = append(recs, r)
	}
	return seq, recs, nil
}

// checkHeader validates the 6-byte header and returns the frame type
// and payload length. Length sanity is per type: record batches must
// be record-aligned, control frames have fixed shapes.
func checkHeader(b []byte) (ftype uint8, n int, err error) {
	if len(b) < HeaderSize {
		return 0, 0, fmt.Errorf("%w: short header: %d bytes", ErrBadFrame, len(b))
	}
	if m := binary.BigEndian.Uint16(b[0:2]); m != Magic {
		return 0, 0, fmt.Errorf("%w: magic %#04x", ErrBadFrame, m)
	}
	if b[2] != Version {
		return 0, 0, fmt.Errorf("%w: version %d", ErrBadFrame, b[2])
	}
	n = int(binary.BigEndian.Uint16(b[4:6]))
	switch b[3] {
	case TypeRecords:
		if n%RecordSize != 0 {
			return 0, 0, fmt.Errorf("%w: payload length %d not a multiple of %d", ErrBadFrame, n, RecordSize)
		}
	case TypeTracedRecords:
		if n%TracedRecordSize != 0 {
			return 0, 0, fmt.Errorf("%w: traced payload length %d not a multiple of %d", ErrBadFrame, n, TracedRecordSize)
		}
	case TypeHello:
		if n != HelloPayloadSize && n != HelloTracePayloadSize {
			return 0, 0, fmt.Errorf("%w: hello length %d", ErrBadFrame, n)
		}
	case TypeAck:
		if n != AckPayloadSize && n != AckTracePayloadSize {
			return 0, 0, fmt.Errorf("%w: ack length %d", ErrBadFrame, n)
		}
	case TypeSealed:
		if n < SealedOverhead || (n-SealedOverhead)%RecordSize != 0 {
			return 0, 0, fmt.Errorf("%w: sealed length %d", ErrBadFrame, n)
		}
	case TypeTracedSealed:
		if n < SealedOverhead || (n-SealedOverhead)%TracedRecordSize != 0 {
			return 0, 0, fmt.Errorf("%w: traced sealed length %d", ErrBadFrame, n)
		}
	case TypeForwarded:
		if n < ForwardedOverhead || (n-ForwardedOverhead)%RecordSize != 0 {
			return 0, 0, fmt.Errorf("%w: forwarded length %d", ErrBadFrame, n)
		}
	case TypeTracedForwarded:
		if n < TracedForwardedOverhead || (n-TracedForwardedOverhead)%TracedFwdRecordSize != 0 {
			return 0, 0, fmt.Errorf("%w: traced forwarded length %d", ErrBadFrame, n)
		}
	case TypeGossip:
		if n < GossipOverhead {
			return 0, 0, fmt.Errorf("%w: gossip length %d", ErrBadFrame, n)
		}
	case TypeHandback:
		if n < HandbackOverhead {
			return 0, 0, fmt.Errorf("%w: handback length %d", ErrBadFrame, n)
		}
	default:
		return 0, 0, fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, b[3])
	}
	return b[3], n, nil
}

// Writer encodes records onto a TCP stream, splitting into maximal
// frames. It buffers internally; call Flush (or Close the conn after
// Flush) when done.
type Writer struct {
	bw      *bufio.Writer
	scratch []byte
	frames  uint64
	records uint64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// WriteRecords frames and writes recs.
func (w *Writer) WriteRecords(recs []Record) error {
	for len(recs) > 0 {
		n := len(recs)
		if n > MaxRecordsPerFrame {
			n = MaxRecordsPerFrame
		}
		w.scratch = AppendFrame(w.scratch[:0], recs[:n])
		if _, err := w.bw.Write(w.scratch); err != nil {
			return err
		}
		w.frames++
		w.records += uint64(n)
		recs = recs[n:]
	}
	return nil
}

// Flush drains the internal buffer to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Frames and Records report how much has been written.
func (w *Writer) Frames() uint64  { return w.frames }
func (w *Writer) Records() uint64 { return w.records }

// Reader decodes a stream of frames (the TCP entry point). ReadFrame
// returns whole frames; Next returns records one at a time. io.EOF
// cleanly ends a stream only on a frame boundary — EOF mid-frame is
// reported as ErrBadFrame.
//
// By default framing errors are permanent: the stream position is
// unknown after one, so callers should drop the connection. With
// EnableResync the Reader instead scans forward to the next 0xD05E
// magic and keeps going, counting what it skipped — the mode for
// long-lived exporter streams where one corrupt frame must not kill
// hours of good data behind it.
type Reader struct {
	br      *bufio.Reader
	carry   []byte // bytes over-read during a resync scan, consumed first
	payload []byte // reused per-frame payload buffer
	pending []TracedRecord
	recs    []Record // reused scratch for unwrapping untraced sealed batches
	pendIdx int

	resync   bool
	frames   uint64
	resyncs  uint64
	skipped  uint64
	emptyRun int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// EnableResync makes framing errors recoverable: instead of returning
// ErrBadFrame, ReadFrame discards bytes until the next magic and
// retries. Resyncs and SkippedBytes report the damage. ErrEmptyFlood
// is still terminal — it is valid framing used abusively.
func (r *Reader) EnableResync() { r.resync = true }

// Resyncs counts framing errors recovered by scanning to a magic.
func (r *Reader) Resyncs() uint64 { return r.resyncs }

// SkippedBytes counts bytes discarded by resync scans.
func (r *Reader) SkippedBytes() uint64 { return r.skipped }

// Frames reports how many complete frames have been decoded.
func (r *Reader) Frames() uint64 { return r.frames }

// readFull fills p from the carry buffer, then the stream.
func (r *Reader) readFull(p []byte) error {
	n := 0
	for n < len(p) && len(r.carry) > 0 {
		c := copy(p[n:], r.carry)
		r.carry = r.carry[c:]
		n += c
	}
	if n == len(p) {
		return nil
	}
	if _, err := io.ReadFull(r.br, p[n:]); err != nil {
		if err == io.EOF && n > 0 {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// scanToMagic discards stale (whose first byte is known bad) and then
// stream bytes until the next Magic, leaving the magic itself queued
// in the carry buffer. Returns io.EOF if the stream ends first.
func (r *Reader) scanToMagic(stale []byte) error {
	r.resyncs++
	r.skipped++ // stale[0] is known bad
	r.carry = append(append(make([]byte, 0, len(stale)-1+len(r.carry)), stale[1:]...), r.carry...)
	for {
		for i := 0; i+1 < len(r.carry); i++ {
			if r.carry[i] == byte(Magic>>8) && r.carry[i+1] == byte(Magic&0xFF) {
				r.skipped += uint64(i)
				r.carry = r.carry[i:]
				return nil
			}
		}
		// No magic in the window: everything but a trailing possible
		// first-magic-byte is garbage. Refill and rescan.
		if n := len(r.carry); n > 0 && r.carry[n-1] == byte(Magic>>8) {
			r.skipped += uint64(n - 1)
			r.carry = r.carry[n-1:]
		} else {
			r.skipped += uint64(n)
			r.carry = r.carry[:0]
		}
		var chunk [512]byte
		n, err := r.br.Read(chunk[:])
		r.carry = append(r.carry, chunk[:n]...)
		if n == 0 && err != nil {
			r.skipped += uint64(len(r.carry))
			r.carry = r.carry[:0]
			return io.EOF
		}
	}
}

// ReadFrame returns the next frame's type and payload. The payload
// slice is only valid until the next call — it is a reused buffer.
func (r *Reader) ReadFrame() (ftype uint8, payload []byte, err error) {
	var hdr [HeaderSize]byte
	for {
		if err := r.readFull(hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return 0, nil, fmt.Errorf("%w: truncated header", ErrBadFrame)
			}
			return 0, nil, err // clean io.EOF between frames
		}
		ftype, n, err := checkHeader(hdr[:])
		if err != nil {
			if r.resync {
				if err := r.scanToMagic(hdr[:]); err != nil {
					return 0, nil, err
				}
				continue
			}
			return 0, nil, err
		}
		if cap(r.payload) < n {
			r.payload = make([]byte, n)
		}
		payload := r.payload[:n]
		if err := r.readFull(payload); err != nil {
			return 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
		}
		if (ftype == TypeRecords || ftype == TypeTracedRecords) && n == 0 {
			r.emptyRun++
			if r.emptyRun > MaxEmptyFrames {
				r.emptyRun = 0
				return 0, nil, ErrEmptyFlood
			}
		} else {
			r.emptyRun = 0
		}
		r.frames++
		return ftype, payload, nil
	}
}

// Next returns the next record, skipping session control frames.
// Sealed record batches are verified and unwrapped; trace contexts on
// traced frames are dropped — use NextTraced to keep them.
func (r *Reader) Next() (Record, error) {
	tr, err := r.NextTraced()
	return tr.Record, err
}

// NextTraced returns the next record together with its trace context
// (zero for legacy untraced frames), skipping session control frames.
func (r *Reader) NextTraced() (TracedRecord, error) {
	for r.pendIdx >= len(r.pending) {
		ftype, payload, err := r.ReadFrame()
		if err != nil {
			return TracedRecord{}, err
		}
		r.pending = r.pending[:0]
		r.pendIdx = 0
		switch ftype {
		case TypeRecords:
			for off := 0; off < len(payload); off += RecordSize {
				rec, err := DecodeRecord(payload[off:])
				if err != nil {
					return TracedRecord{}, err
				}
				r.pending = append(r.pending, TracedRecord{Record: rec})
			}
		case TypeTracedRecords:
			if r.pending, err = parseTracedPayload(payload, r.pending); err != nil {
				return TracedRecord{}, err
			}
		case TypeSealed:
			if _, r.recs, err = ParseSealed(payload, r.recs[:0]); err != nil {
				return TracedRecord{}, err
			}
			for _, rec := range r.recs {
				r.pending = append(r.pending, TracedRecord{Record: rec})
			}
		case TypeTracedSealed:
			if _, r.pending, err = ParseTracedSealed(payload, r.pending); err != nil {
				return TracedRecord{}, err
			}
		case TypeForwarded:
			if _, _, r.recs, err = ParseForwarded(payload, r.recs[:0]); err != nil {
				return TracedRecord{}, err
			}
			for _, rec := range r.recs {
				r.pending = append(r.pending, TracedRecord{Record: rec})
			}
		case TypeTracedForwarded:
			if _, _, r.pending, err = ParseTracedForwarded(payload, r.pending); err != nil {
				return TracedRecord{}, err
			}
			// NextTraced exposes the exporter-facing context only: the
			// forward-hop lane (Routed, Origin) is cluster-internal and
			// must not leak into contexts that re-encode as 16-byte
			// trace frames. The slab decoder keeps the full context.
			for i := range r.pending {
				r.pending[i].Ctx.Routed = 0
				r.pending[i].Ctx.Origin = 0
			}
		case TypeHello, TypeAck, TypeGossip, TypeHandback:
			// control, gossip and handback frames carry no records
		}
	}
	tr := r.pending[r.pendIdx]
	r.pendIdx++
	return tr, nil
}
