// Package wire defines the compact binary format `ddpmd` ingests: one
// Record per marked packet observed at a victim NIC (topology id,
// victim node, marking field, claimed header source), batched into
// versioned frames. The format is the daemon's contract with exporters:
// length-prefixed frames over TCP streams, one frame per datagram over
// UDP, and a JSONL replay reader so offline `trace` output (or
// hand-written records) can be fed through the same pipeline.
//
// A Record is deliberately tiny (24 bytes): the paper's whole premise
// is that single-packet identification needs only the 16-bit MF plus
// the victim's own coordinate, so the export path stays cheap enough
// to run per packet on a loaded NIC.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/topology"
)

// Wire constants. Magic guards against a stray client speaking the
// wrong protocol; Version is bumped on incompatible layout changes.
const (
	Magic       uint16 = 0xD05E
	Version     uint8  = 1
	TypeRecords uint8  = 1

	// HeaderSize is the frame header: magic(2) version(1) type(1)
	// payload-length(2), big-endian throughout.
	HeaderSize = 6

	// RecordSize is the fixed encoded size of one Record.
	RecordSize = 24

	// MaxFramePayload is the largest payload a frame can carry (the
	// length field is 16-bit); MaxRecordsPerFrame follows.
	MaxFramePayload    = 1<<16 - 1
	MaxRecordsPerFrame = MaxFramePayload / RecordSize
)

// ErrBadFrame tags every framing-level decode failure (bad magic,
// unknown version or type, misaligned payload). Callers distinguish it
// from io errors with errors.Is.
var ErrBadFrame = errors.New("wire: bad frame")

// Record is one observed marked packet at a victim.
//
// Encoded layout (big-endian, 24 bytes):
//
//	[0:8)   T       int64   observation time in simulator ticks
//	[8:12)  Topo    uint32  TopoID of the fabric the MF was marked in
//	[12:16) Victim  uint32  victim NodeID (the observing NIC's node)
//	[16:18) MF      uint16  marking field (IP Identification)
//	[18:22) Src     uint32  claimed (spoofable) header source address
//	[22]    Proto   uint8   transport protocol
//	[23]    —       uint8   reserved, must encode as zero
type Record struct {
	T      eventq.Time
	Topo   uint32
	Victim topology.NodeID
	MF     uint16
	Src    packet.Addr
	Proto  packet.Proto
}

// TopoID derives the 32-bit topology identifier carried on the wire
// from a topology's Name() (e.g. "torus-8x8"), so daemon and exporter
// can cheaply agree they are talking about the same fabric without
// shipping the dimension list per record.
func TopoID(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// AppendRecord appends r's 24-byte encoding to b.
func AppendRecord(b []byte, r Record) []byte {
	var buf [RecordSize]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(r.T))
	binary.BigEndian.PutUint32(buf[8:12], r.Topo)
	binary.BigEndian.PutUint32(buf[12:16], uint32(r.Victim))
	binary.BigEndian.PutUint16(buf[16:18], r.MF)
	binary.BigEndian.PutUint32(buf[18:22], uint32(r.Src))
	buf[22] = uint8(r.Proto)
	buf[23] = 0
	return append(b, buf[:]...)
}

// DecodeRecord decodes one record from the first RecordSize bytes of b.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < RecordSize {
		return Record{}, fmt.Errorf("%w: short record: %d bytes", ErrBadFrame, len(b))
	}
	return Record{
		T:      eventq.Time(binary.BigEndian.Uint64(b[0:8])),
		Topo:   binary.BigEndian.Uint32(b[8:12]),
		Victim: topology.NodeID(binary.BigEndian.Uint32(b[12:16])),
		MF:     binary.BigEndian.Uint16(b[16:18]),
		Src:    packet.Addr(binary.BigEndian.Uint32(b[18:22])),
		Proto:  packet.Proto(b[22]),
	}, nil
}

// AppendFrame appends one frame holding recs to b. It panics if recs
// exceeds MaxRecordsPerFrame — splitting across frames is the Writer's
// job.
func AppendFrame(b []byte, recs []Record) []byte {
	if len(recs) > MaxRecordsPerFrame {
		panic(fmt.Sprintf("wire: %d records exceed the %d-record frame limit", len(recs), MaxRecordsPerFrame))
	}
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = TypeRecords
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(recs)*RecordSize))
	b = append(b, hdr[:]...)
	for _, r := range recs {
		b = AppendRecord(b, r)
	}
	return b
}

// ParseFrame decodes a complete frame held in b — the UDP entry point,
// where one datagram carries exactly one frame. It returns the decoded
// records and the number of bytes consumed.
func ParseFrame(b []byte) ([]Record, int, error) {
	n, err := checkHeader(b)
	if err != nil {
		return nil, 0, err
	}
	if len(b) < HeaderSize+n {
		return nil, 0, fmt.Errorf("%w: truncated payload: have %d of %d bytes",
			ErrBadFrame, len(b)-HeaderSize, n)
	}
	recs := make([]Record, 0, n/RecordSize)
	for off := HeaderSize; off < HeaderSize+n; off += RecordSize {
		r, err := DecodeRecord(b[off:])
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, r)
	}
	return recs, HeaderSize + n, nil
}

// checkHeader validates the 6-byte header and returns the payload
// length.
func checkHeader(b []byte) (int, error) {
	if len(b) < HeaderSize {
		return 0, fmt.Errorf("%w: short header: %d bytes", ErrBadFrame, len(b))
	}
	if m := binary.BigEndian.Uint16(b[0:2]); m != Magic {
		return 0, fmt.Errorf("%w: magic %#04x", ErrBadFrame, m)
	}
	if b[2] != Version {
		return 0, fmt.Errorf("%w: version %d", ErrBadFrame, b[2])
	}
	if b[3] != TypeRecords {
		return 0, fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, b[3])
	}
	n := int(binary.BigEndian.Uint16(b[4:6]))
	if n%RecordSize != 0 {
		return 0, fmt.Errorf("%w: payload length %d not a multiple of %d", ErrBadFrame, n, RecordSize)
	}
	return n, nil
}

// Writer encodes records onto a TCP stream, splitting into maximal
// frames. It buffers internally; call Flush (or Close the conn after
// Flush) when done.
type Writer struct {
	bw      *bufio.Writer
	scratch []byte
	frames  uint64
	records uint64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// WriteRecords frames and writes recs.
func (w *Writer) WriteRecords(recs []Record) error {
	for len(recs) > 0 {
		n := len(recs)
		if n > MaxRecordsPerFrame {
			n = MaxRecordsPerFrame
		}
		w.scratch = AppendFrame(w.scratch[:0], recs[:n])
		if _, err := w.bw.Write(w.scratch); err != nil {
			return err
		}
		w.frames++
		w.records += uint64(n)
		recs = recs[n:]
	}
	return nil
}

// Flush drains the internal buffer to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Frames and Records report how much has been written.
func (w *Writer) Frames() uint64  { return w.frames }
func (w *Writer) Records() uint64 { return w.records }

// Reader decodes a stream of frames (the TCP entry point). Next
// returns records one at a time; io.EOF cleanly ends a stream only on
// a frame boundary — EOF mid-frame is reported as
// io.ErrUnexpectedEOF.
type Reader struct {
	br      *bufio.Reader
	pending []Record
	frames  uint64
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// Next returns the next record. Framing errors are permanent: the
// stream position is unknown after one, so callers should drop the
// connection.
func (r *Reader) Next() (Record, error) {
	for len(r.pending) == 0 {
		var hdr [HeaderSize]byte
		if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return Record{}, fmt.Errorf("%w: truncated header", ErrBadFrame)
			}
			return Record{}, err // clean io.EOF between frames
		}
		n, err := checkHeader(hdr[:])
		if err != nil {
			return Record{}, err
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r.br, payload); err != nil {
			return Record{}, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
		}
		r.frames++
		for off := 0; off < n; off += RecordSize {
			rec, err := DecodeRecord(payload[off:])
			if err != nil {
				return Record{}, err
			}
			r.pending = append(r.pending, rec)
		}
	}
	rec := r.pending[0]
	r.pending = r.pending[1:]
	return rec, nil
}

// Frames reports how many complete frames have been decoded.
func (r *Reader) Frames() uint64 { return r.frames }
