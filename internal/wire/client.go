package wire

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// Client is the exporter side of a resumable session: it buffers
// records, ships them as CRC-sealed frames, and survives dropped
// connections and daemon restarts by reconnecting with jittered
// exponential backoff and retransmitting everything past the server's
// acknowledged count. Delivery is exactly-once per daemon incarnation:
// sequence numbers let the server skip retransmitted prefixes, so
//
//	Sent() − Lost() == records the daemon accepted
//
// holds exactly. Loss is never silent — records are abandoned only
// when the bounded buffer overflows while the daemon is unreachable or
// when Close gives up, and each abandoned record is counted (and
// handed to OnLost when set).
//
// A Client is not safe for concurrent use; it is a single exporter
// goroutine's tool, like the Writer it replaces.
type Client struct {
	cfg      ClientConfig
	streamID uint64
	jitter   *rand.Rand

	conn net.Conn
	bw   *bufio.Writer
	rd   *Reader

	buf     []TracedRecord // unacked records; buf[0] has stream index `base`
	base    uint64         // cumulative records acked by the server
	next    int            // index into buf of the first unsent record
	backoff int            // consecutive failed connection attempts

	scratch []byte
	plain   []Record // reused downgrade scratch for untraced sealed frames

	traceSeq uint64 // trace-id counter (stamping enabled by cfg.Trace)
	traceOK  bool   // server echoed HelloFlagTrace on this connection

	sent       uint64
	lost       uint64
	resent     uint64
	reconnects uint64
	closed     bool
}

// ClientConfig parameterizes a Client. Zero values take the defaults
// noted per field.
type ClientConfig struct {
	// Addr is the daemon's TCP ingest address, used by the default
	// dialer. Dial overrides it entirely (tests, fault injection).
	Addr string
	Dial func() (net.Conn, error)

	// StreamID names this exporter's record stream across reconnects.
	// 0 derives one from Seed — fine as long as two exporters of the
	// same daemon don't share a seed.
	StreamID uint64

	// Seed drives backoff jitter (and StreamID when unset). 0 means 1:
	// the client is deterministic by default, like the simulator.
	Seed uint64

	// BufferRecords bounds the in-memory unacked-record buffer
	// (default 65536). Records offered while the buffer is full and
	// the daemon unreachable are shed and counted, never queued
	// unboundedly — an exporter that eats the victim NIC's memory
	// under flood would be its own amplifier.
	BufferRecords int

	// MaxAttempts is how many consecutive connection attempts an
	// operation makes before giving up (default 8). Any acked progress
	// resets the count.
	MaxAttempts int

	// BackoffBase and BackoffMax bound the jittered exponential
	// reconnect delay (defaults 10ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// AckTimeout bounds each wait for a server ack (default 5s).
	AckTimeout time.Duration

	// MaxBatch caps records per sealed frame (default 1024).
	MaxBatch int

	// OnLost observes every record the client abandons.
	OnLost func(Record)

	// Sleep replaces time.Sleep in tests.
	Sleep func(time.Duration)

	// Trace stamps every record offered through Send with a fresh
	// trace context (a SplitMix64-spread id derived from the stream id
	// plus the send timestamp) and negotiates traced sealed frames in
	// the session hello. When the server does not echo the trace flag
	// the client downgrades to plain sealed frames for that connection
	// — records are never held hostage to the extension.
	Trace bool

	// NowNano supplies trace send timestamps; defaults to
	// time.Now().UnixNano(). Tests inject a fake clock.
	NowNano func() int64

	// ForwardOrigin, when non-zero, makes this a cluster forwarding
	// client: records ship as TypeForwarded frames stamped with this
	// origin-instance id, and the session hello carries
	// HelloFlagForward. A server that does not echo the flag (cluster
	// mode off) fails the connection — forwarded records must never be
	// silently tallied as first-hand ingest. Combined with Trace the
	// client ships TypeTracedForwarded frames instead, carrying each
	// record's trace context across the hop (contexts are supplied by
	// SendTraced, not stamped); a peer that echoes forwarding but not
	// tracing downgrades the connection to plain forwarded frames.
	ForwardOrigin uint64

	// OnTraceDowngrade fires once per established connection on which
	// Trace was requested but the server did not echo HelloFlagTrace —
	// the clean-downgrade audit hook (the cluster node journals a
	// trace_downgraded event from it). Records still flow untraced.
	OnTraceDowngrade func()
}

func (c *ClientConfig) applyDefaults() {
	if c.Dial == nil {
		addr := c.Addr
		c.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StreamID == 0 {
		c.StreamID = c.Seed*0x9E3779B97F4A7C15 + 0x1234_5678 // splitmix-style spread
	}
	if c.BufferRecords <= 0 {
		c.BufferRecords = 1 << 16
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.NowNano == nil {
		c.NowNano = func() int64 { return time.Now().UnixNano() }
	}
}

// ErrClientClosed is returned by Send after Close.
var ErrClientClosed = errors.New("wire: client closed")

// NewClient builds a client. No connection is made until the first
// Send — a daemon that is down at exporter start is just the first
// fault to recover from.
//
// A MaxBatch beyond what one sealed frame can carry is rejected
// outright rather than silently clamped: the caller sized its batches
// for a throughput target, and shipping smaller frames than asked for
// should be a loud configuration error, not a quiet downgrade.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.MaxBatch > MaxRecordsPerSealed {
		return nil, fmt.Errorf("wire: MaxBatch %d exceeds the %d records one sealed frame can carry",
			cfg.MaxBatch, MaxRecordsPerSealed)
	}
	if cfg.Trace && cfg.MaxBatch > MaxTracedPerSealed {
		return nil, fmt.Errorf("wire: traced MaxBatch %d exceeds the %d traced records one sealed frame can carry",
			cfg.MaxBatch, MaxTracedPerSealed)
	}
	if cfg.ForwardOrigin != 0 {
		if cfg.MaxBatch > MaxRecordsPerForwarded {
			return nil, fmt.Errorf("wire: forwarding MaxBatch %d exceeds the %d records one forwarded frame can carry",
				cfg.MaxBatch, MaxRecordsPerForwarded)
		}
		if cfg.Trace && cfg.MaxBatch > MaxTracedPerForwarded {
			return nil, fmt.Errorf("wire: traced forwarding MaxBatch %d exceeds the %d records one traced forwarded frame can carry",
				cfg.MaxBatch, MaxTracedPerForwarded)
		}
	}
	cfg.applyDefaults()
	return &Client{
		cfg:      cfg,
		streamID: cfg.StreamID,
		jitter:   rand.New(rand.NewSource(int64(cfg.Seed))),
	}, nil
}

// Counters. Sent counts records offered to Send; Delivered counts
// records the server has acknowledged; Lost counts records abandoned
// (buffer overflow while unreachable, or given up at Close); Resent
// counts retransmitted records; Reconnects counts established
// connections after the first.
func (c *Client) Sent() uint64      { return c.sent }
func (c *Client) Delivered() uint64 { return c.base }
func (c *Client) Lost() uint64      { return c.lost }
func (c *Client) Resent() uint64    { return c.resent }
func (c *Client) Reconnects() uint64 {
	if c.reconnects == 0 {
		return 0
	}
	return c.reconnects - 1
}

// Buffered reports records held but not yet acknowledged.
func (c *Client) Buffered() int { return len(c.buf) }

// Send offers records for delivery. It blocks only for bounded work —
// at most MaxAttempts connection attempts — and sheds (counts + calls
// OnLost) whatever cannot be buffered when the daemon stays
// unreachable. The returned error is advisory (the delivery state is
// fully described by the counters): it reports shedding or a dead
// daemon, and Send may be called again after it.
func (c *Client) Send(recs []Record) error {
	if c.closed {
		return ErrClientClosed
	}
	for len(recs) > 0 {
		free := c.cfg.BufferRecords - len(c.buf)
		if free == 0 {
			err := c.pump()
			if len(c.buf) < c.cfg.BufferRecords {
				continue // acked progress freed space, even if pump errored
			}
			// Unreachable with a full buffer: shed the rest of the
			// incoming batch, never the buffered (possibly partially
			// sent) records.
			c.sent += uint64(len(recs))
			for _, r := range recs {
				c.drop(r)
			}
			return fmt.Errorf("wire: client shed %d records: %w", len(recs), err)
		}
		n := min(free, len(recs))
		c.sent += uint64(n)
		for _, r := range recs[:n] {
			c.buf = append(c.buf, TracedRecord{Record: r, Ctx: c.stamp()})
		}
		recs = recs[n:]
		if len(c.buf) >= c.cfg.MaxBatch {
			// Opportunistic flush; on failure records just stay
			// buffered for the next Send, Flush or Close to retry.
			c.pump()
		}
	}
	return nil
}

// SendTraced offers records that already carry trace contexts — the
// cluster forward path, where contexts were minted by the original
// exporter and must cross the hop unchanged rather than be re-stamped.
// Zero-context entries ride along untraced. Buffering, shedding and
// the counters behave exactly like Send.
func (c *Client) SendTraced(trs []TracedRecord) error {
	if c.closed {
		return ErrClientClosed
	}
	for len(trs) > 0 {
		free := c.cfg.BufferRecords - len(c.buf)
		if free == 0 {
			err := c.pump()
			if len(c.buf) < c.cfg.BufferRecords {
				continue
			}
			c.sent += uint64(len(trs))
			for _, tr := range trs {
				c.drop(tr.Record)
			}
			return fmt.Errorf("wire: client shed %d records: %w", len(trs), err)
		}
		n := min(free, len(trs))
		c.sent += uint64(n)
		c.buf = append(c.buf, trs[:n]...)
		trs = trs[n:]
		if len(c.buf) >= c.cfg.MaxBatch {
			c.pump()
		}
	}
	return nil
}

// stamp mints the next trace context, or a zero one when tracing is
// off. Forwarding clients never stamp: their contexts were minted by
// the original exporter and arrive through SendTraced — a record
// forwarded through Send rides the hop untraced rather than acquiring
// a second identity.
func (c *Client) stamp() TraceContext {
	if !c.cfg.Trace || c.cfg.ForwardOrigin != 0 {
		return TraceContext{}
	}
	c.traceSeq++
	return TraceContext{
		ID:   SplitMix64(c.streamID ^ c.traceSeq),
		Sent: c.cfg.NowNano(),
	}
}

// TraceIDAt reports the trace id Send stamped on the n-th record
// offered (0-based) when tracing is on — exporters that log ground
// truth use it to correlate their own records with daemon traces.
func (c *Client) TraceIDAt(n uint64) uint64 {
	if !c.cfg.Trace {
		return 0
	}
	return SplitMix64(c.streamID ^ (n + 1))
}

// Flush pushes every buffered record and waits for the server to
// acknowledge all of it.
func (c *Client) Flush() error { return c.pump() }

// Close flushes with full retries, abandons (and counts) whatever the
// daemon never acknowledged, and releases the connection. The error
// reports abandoned records, if any.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	err := c.pump()
	c.closed = true
	abandoned := len(c.buf)
	for _, r := range c.buf {
		c.drop(r.Record)
	}
	c.buf = nil
	c.disconnect()
	if abandoned > 0 {
		return fmt.Errorf("wire: client abandoned %d unacknowledged records: %w", abandoned, err)
	}
	return nil
}

// drop abandons one record: counted, reported, never silent.
func (c *Client) drop(r Record) {
	c.lost++
	if c.cfg.OnLost != nil {
		c.cfg.OnLost(r)
	}
}

// pump drives the session until every buffered record is acked or
// MaxAttempts consecutive connection attempts have failed.
func (c *Client) pump() error {
	var lastErr error
	for len(c.buf) > 0 {
		if c.conn == nil {
			if c.backoff >= c.cfg.MaxAttempts {
				c.backoff = 0 // next pump starts a fresh attempt budget
				if lastErr == nil {
					lastErr = errors.New("wire: daemon unreachable")
				}
				return lastErr
			}
			if err := c.connect(); err != nil {
				lastErr = err
				c.backoff++
				c.cfg.Sleep(c.backoffDelay())
				continue
			}
		}
		if err := c.shipAndAwait(); err != nil {
			lastErr = err
			c.disconnect()
			c.backoff++
			c.cfg.Sleep(c.backoffDelay())
			continue
		}
	}
	return nil
}

// backoffDelay is the jittered exponential reconnect delay for the
// current consecutive-failure count: base·2^(n−1), capped at max, with
// ±50% jitter so a fleet of exporters doesn't stampede a restarted
// daemon in lockstep.
func (c *Client) backoffDelay() time.Duration {
	d := c.cfg.BackoffBase << (c.backoff - 1)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	return d/2 + time.Duration(c.jitter.Int63n(int64(d)))
}

// connect dials, sends the hello, and realigns the buffer to the
// server's acknowledged count.
func (c *Client) connect() error {
	conn, err := c.cfg.Dial()
	if err != nil {
		return fmt.Errorf("wire: dial: %w", err)
	}
	c.conn = conn
	c.bw = bufio.NewWriter(conn)
	c.rd = NewReader(conn)
	c.reconnects++
	conn.SetWriteDeadline(time.Now().Add(c.cfg.AckTimeout))
	var flags uint32
	if c.cfg.Trace {
		flags = HelloFlagTrace
	}
	if c.cfg.ForwardOrigin != 0 {
		flags |= HelloFlagForward
	}
	c.scratch = AppendHelloFlags(c.scratch[:0], c.streamID, c.base, flags)
	if _, err := c.bw.Write(c.scratch); err != nil {
		c.disconnect()
		return fmt.Errorf("wire: hello: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		c.disconnect()
		return fmt.Errorf("wire: hello: %w", err)
	}
	acked, ackFlags, err := c.readAck()
	if err != nil {
		c.disconnect()
		return fmt.Errorf("wire: hello ack: %w", err)
	}
	// Traced frames only flow when the server echoed the flag; an old
	// server's legacy ack (flags 0) downgrades this connection to plain
	// sealed frames, shedding contexts but never records.
	c.traceOK = c.cfg.Trace && ackFlags&HelloFlagTrace != 0
	if c.cfg.Trace && !c.traceOK && c.cfg.OnTraceDowngrade != nil {
		c.cfg.OnTraceDowngrade()
	}
	// Forwarding has no downgrade: a server that won't take forwarded
	// frames (cluster mode off) must not receive these records at all,
	// so refusal is a connection failure the backoff loop retries.
	if c.cfg.ForwardOrigin != 0 && ackFlags&HelloFlagForward == 0 {
		c.disconnect()
		return errors.New("wire: server refused forwarding (no HelloFlagForward in ack)")
	}
	if err := c.advance(acked); err != nil {
		c.disconnect()
		return err
	}
	// Everything still buffered must be (re)transmitted on this conn.
	if c.next > 0 {
		c.resent += uint64(min(c.next, len(c.buf)))
	}
	c.next = 0
	return nil
}

// shipAndAwait writes every unsent buffered record as sealed frames,
// flushes, and consumes acks until the server has confirmed the lot.
func (c *Client) shipAndAwait() error {
	c.conn.SetWriteDeadline(time.Now().Add(c.cfg.AckTimeout))
	for c.next < len(c.buf) {
		n := min(c.cfg.MaxBatch, len(c.buf)-c.next)
		seq := c.base + uint64(c.next)
		batch := c.buf[c.next : c.next+n]
		switch {
		case c.traceOK && c.cfg.ForwardOrigin != 0 && batchTraced(batch):
			c.scratch = AppendTracedForwarded(c.scratch[:0], c.cfg.ForwardOrigin, seq, batch)
		case c.traceOK && c.cfg.ForwardOrigin == 0:
			c.scratch = AppendTracedSealed(c.scratch[:0], seq, batch)
		case c.cfg.ForwardOrigin != 0:
			c.plain = c.plain[:0]
			for _, tr := range batch {
				c.plain = append(c.plain, tr.Record)
			}
			c.scratch = AppendForwarded(c.scratch[:0], c.cfg.ForwardOrigin, seq, c.plain)
		default:
			c.plain = c.plain[:0]
			for _, tr := range batch {
				c.plain = append(c.plain, tr.Record)
			}
			c.scratch = AppendSealed(c.scratch[:0], seq, c.plain)
		}
		if _, err := c.bw.Write(c.scratch); err != nil {
			return err
		}
		c.next += n
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	target := c.base + uint64(len(c.buf))
	for c.base < target {
		acked, _, err := c.readAck()
		if err != nil {
			return err
		}
		if err := c.advance(acked); err != nil {
			return err
		}
		c.backoff = 0 // acked progress: reset the attempt budget
	}
	return nil
}

// batchTraced reports whether any record of a batch carries a trace
// context. An all-zero batch on a traced forwarding session ships as a
// plain forwarded frame — the untraced forward hot path pays no
// per-record wire overhead for the negotiated trace lane.
func batchTraced(batch []TracedRecord) bool {
	for i := range batch {
		if batch[i].Ctx.ID != 0 {
			return true
		}
	}
	return false
}

// readAck reads frames until a TypeAck arrives, bounded by AckTimeout.
func (c *Client) readAck() (uint64, uint32, error) {
	c.conn.SetReadDeadline(time.Now().Add(c.cfg.AckTimeout))
	for {
		ftype, payload, err := c.rd.ReadFrame()
		if err != nil {
			return 0, 0, err
		}
		if ftype != TypeAck {
			continue // a session server only sends acks; tolerate noise
		}
		return ParseAckFlags(payload)
	}
}

// advance reconciles the server's cumulative count with the buffer.
func (c *Client) advance(acked uint64) error {
	if acked < c.base || acked > c.base+uint64(len(c.buf)) {
		return fmt.Errorf("%w: ack %d outside window [%d, %d]",
			ErrBadFrame, acked, c.base, c.base+uint64(len(c.buf)))
	}
	d := int(acked - c.base)
	c.buf = c.buf[:copy(c.buf, c.buf[d:])]
	c.base = acked
	c.next = max(0, c.next-d)
	return nil
}

func (c *Client) disconnect() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.bw, c.rd = nil, nil, nil
	}
}
