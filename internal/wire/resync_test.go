package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/topology"
)

// plainRecords builds records whose encodings contain no 0xD0 byte, so
// resync scans cannot hit a false magic inside record payloads and the
// expected recovery point is exact.
func plainRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			T: eventq.Time(i % 100), Topo: 0x01020304,
			Victim: topology.NodeID(i % 64),
			MF:     uint16(i % 0x50),
			Src:    packet.AddrFrom4(10, 0, 1, byte(i)),
			Proto:  packet.ProtoTCPSYN,
		}
	}
	return recs
}

// TestReaderResyncAcrossCorruption corrupts one header byte of a
// mid-stream frame at every header offset and asserts the resync
// reader recovers every record of every later frame, with the damage
// visible in Resyncs/SkippedBytes.
func TestReaderResyncAcrossCorruption(t *testing.T) {
	const perFrame, frames, corruptFrame = 3, 10, 4
	recs := plainRecords(perFrame * frames)
	var stream []byte
	frameStart := make([]int, frames)
	for f := 0; f < frames; f++ {
		frameStart[f] = len(stream)
		stream = AppendFrame(stream, recs[f*perFrame:(f+1)*perFrame])
	}

	cases := map[string]struct {
		off  int  // byte offset within the corrupted frame's header
		flip byte // XOR mask
	}{
		"magic byte 0":      {0, 0xFF},
		"magic byte 1":      {1, 0xFF},
		"version":           {2, 0x10},
		"type":              {3, 0x60},
		"length misaligned": {5, 0x01}, // 72 -> 73, not a record multiple
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			b := append([]byte(nil), stream...)
			b[frameStart[corruptFrame]+tc.off] ^= tc.flip

			r := NewReader(bytes.NewReader(b))
			r.EnableResync()
			var got []Record
			for {
				rec, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("resync reader died: %v", err)
				}
				got = append(got, rec)
			}
			// Frames before the corruption arrive intact; the corrupted
			// frame is skipped; everything after is recovered.
			want := append(append([]Record(nil), recs[:corruptFrame*perFrame]...),
				recs[(corruptFrame+1)*perFrame:]...)
			if len(got) != len(want) {
				t.Fatalf("recovered %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
				}
			}
			if r.Resyncs() == 0 {
				t.Error("no resync counted")
			}
			if r.SkippedBytes() == 0 {
				t.Error("no skipped bytes counted")
			}
		})
	}
}

// TestReaderResyncThroughInjectedGarbage interleaves garbage runs
// between valid frames: every record survives, every garbage byte is
// accounted for.
func TestReaderResyncThroughInjectedGarbage(t *testing.T) {
	recs := plainRecords(12)
	garbage := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42, 0x99}
	var b []byte
	var garbageBytes int
	for f := 0; f < 4; f++ {
		b = append(b, garbage...)
		garbageBytes += len(garbage)
		b = AppendFrame(b, recs[f*3:(f+1)*3])
	}
	b = append(b, garbage...) // trailing garbage runs into EOF
	garbageBytes += len(garbage)

	r := NewReader(bytes.NewReader(b))
	r.EnableResync()
	for i := range recs {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, rec, recs[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF after trailing garbage, got %v", err)
	}
	if got := r.SkippedBytes(); got != uint64(garbageBytes) {
		t.Errorf("skipped %d bytes, want %d", got, garbageBytes)
	}
	if got := r.Resyncs(); got != 5 {
		t.Errorf("resyncs = %d, want 5", got)
	}
}

// TestReaderWithoutResyncStillFailsHard pins the default contract:
// framing errors stay terminal unless resync is opted into.
func TestReaderWithoutResyncStillFailsHard(t *testing.T) {
	b := append([]byte{0xBA, 0xD0}, AppendFrame(nil, plainRecords(2))...)
	r := NewReader(bytes.NewReader(b))
	if _, err := r.Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame, got %v", err)
	}
}

// TestReaderCapsEmptyFrameRuns is the regression test for the
// empty-frame spin: a peer streaming valid zero-record frames used to
// loop Next forever with no progress or accounting.
func TestReaderCapsEmptyFrameRuns(t *testing.T) {
	var b []byte
	for i := 0; i < MaxEmptyFrames+1; i++ {
		b = AppendFrame(b, nil)
	}
	r := NewReader(bytes.NewReader(b))
	_, err := r.Next()
	if !errors.Is(err, ErrEmptyFlood) || !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty-frame flood: got %v, want ErrEmptyFlood wrapping ErrBadFrame", err)
	}

	// Runs at or below the cap are tolerated, and a record frame
	// resets the run.
	recs := plainRecords(2)
	b = b[:0]
	for i := 0; i < MaxEmptyFrames; i++ {
		b = AppendFrame(b, nil)
	}
	b = AppendFrame(b, recs[:1])
	for i := 0; i < MaxEmptyFrames; i++ {
		b = AppendFrame(b, nil)
	}
	b = AppendFrame(b, recs[1:])
	r = NewReader(bytes.NewReader(b))
	for i := range recs {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d after empty runs: %v", i, err)
		}
		if rec != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, rec, recs[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestSessionFrameRoundTrips(t *testing.T) {
	// Hello.
	b := AppendHello(nil, 0xCAFEBABE, 42)
	ftype, n, err := checkHeader(b)
	if err != nil || ftype != TypeHello || n != HelloPayloadSize {
		t.Fatalf("hello header: type=%d n=%d err=%v", ftype, n, err)
	}
	id, base, err := ParseHello(b[HeaderSize:])
	if err != nil || id != 0xCAFEBABE || base != 42 {
		t.Fatalf("hello round trip: id=%#x base=%d err=%v", id, base, err)
	}

	// Ack.
	b = AppendAck(nil, 12345)
	if ftype, _, err = checkHeader(b); err != nil || ftype != TypeAck {
		t.Fatalf("ack header: type=%d err=%v", ftype, err)
	}
	count, err := ParseAck(b[HeaderSize:])
	if err != nil || count != 12345 {
		t.Fatalf("ack round trip: count=%d err=%v", count, err)
	}

	// Sealed.
	recs := plainRecords(5)
	b = AppendSealed(nil, 99, recs)
	if ftype, _, err = checkHeader(b); err != nil || ftype != TypeSealed {
		t.Fatalf("sealed header: type=%d err=%v", ftype, err)
	}
	seq, got, err := ParseSealed(b[HeaderSize:], nil)
	if err != nil || seq != 99 {
		t.Fatalf("sealed round trip: seq=%d err=%v", seq, err)
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("sealed record %d mismatch", i)
		}
	}
}

// TestSealedCRCDetectsCorruption flips each payload byte in turn: the
// CRC must reject every single-byte corruption — this is what keeps
// bit flips from being silently tallied as identifications.
func TestSealedCRCDetectsCorruption(t *testing.T) {
	frame := AppendSealed(nil, 7, plainRecords(3))
	for off := HeaderSize; off < len(frame); off++ {
		b := append([]byte(nil), frame...)
		b[off] ^= 0x20
		if _, _, err := ParseSealed(b[HeaderSize:], nil); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("corruption at byte %d not detected: %v", off, err)
		}
	}
	// Control frames are CRC-guarded too.
	hello := AppendHello(nil, 1, 2)
	hello[HeaderSize] ^= 0x01
	if _, _, err := ParseHello(hello[HeaderSize:]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("hello corruption not detected: %v", err)
	}
	ack := AppendAck(nil, 3)
	ack[HeaderSize] ^= 0x01
	if _, err := ParseAck(ack[HeaderSize:]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("ack corruption not detected: %v", err)
	}
}

// TestNextSkipsControlFramesAndUnwrapsSealed: a record iterator over a
// mixed session stream sees exactly the records.
func TestNextSkipsControlFramesAndUnwrapsSealed(t *testing.T) {
	recs := plainRecords(6)
	var b []byte
	b = AppendHello(b, 1, 0)
	b = AppendSealed(b, 0, recs[:4])
	b = AppendAck(b, 4)
	b = AppendFrame(b, recs[4:])
	r := NewReader(bytes.NewReader(b))
	for i := range recs {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, rec, recs[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
