package wire

// Record slabs: the batch currency of the ingest hot path. A frame is
// decoded once into a pooled Slab ([]Record plus an optional parallel
// trace-context slice) instead of driving a per-record callback; the
// pipeline then partitions the slab by victim shard in place and hands
// each shard a sub-batch *view* of the slab as one channel element.
// Reference counting (one count per in-flight view plus the
// submitter's) returns the slab to its pool when the last worker is
// done, so the untraced path recycles every buffer it touches.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"slices"
	"sync/atomic"

	"repro/internal/topology"
)

// SlabCap is a slab's record capacity. It equals the largest record
// count a single wire frame can carry, so any one frame always decodes
// into an empty slab without splitting.
const SlabCap = MaxRecordsPerFrame

// ErrSlabFull is returned by the append-decoders when a frame's records
// would not fit in the slab's remaining capacity; the caller submits
// the slab and retries the frame on a fresh one.
var ErrSlabFull = fmt.Errorf("wire: slab full")

// ShardGroup is one shard's contiguous record range in a partitioned
// slab (see Slab.Partition): records [Start, End) all shard to Shard,
// grouped by victim within the range.
type ShardGroup struct {
	Shard      int
	Start, End int
}

// Slab is a reusable batch of decoded records. Recs (and, for traced
// frames, the parallel Ctxs) are the payload; everything else is
// recycled scratch. Get one from a SlabPool, fill it with the Append*
// decoders, hand it to the pipeline, and let reference counts return
// it: the pool's Get sets one reference for the caller, Retain adds
// one per handed-out view, Release drops one and recycles the slab
// when the count reaches zero.
//
// A slab is single-goroutine while being filled and partitioned; after
// the views are handed off, concurrent readers only ever read Recs and
// Ctxs, which no one mutates until the last Release.
type Slab struct {
	Recs []Record
	Ctxs []TraceContext // non-nil ⇒ parallel to Recs; zero ID = untraced record

	recsBuf, recsAlt []Record       // double buffer: decode target / scatter target
	ctxsBuf, ctxsAlt []TraceContext // allocated on first traced use
	vc               []int32        // per-victim counting-sort scratch, kept zeroed
	touched          []topology.NodeID
	groups           []ShardGroup

	refs atomic.Int32
	pool *SlabPool
}

func newSlab(p *SlabPool) *Slab {
	return &Slab{
		recsBuf: make([]Record, 0, SlabCap),
		pool:    p,
		// Partition scratch, sized so typical fan-outs never grow it:
		// 64 distinct victims and 32 shard runs cover every deployment
		// in the repo; pathological slabs still grow transparently.
		touched: make([]topology.NodeID, 0, 64),
		groups:  make([]ShardGroup, 0, 32),
	}
}

// Len and Free report the record count and the remaining capacity.
func (s *Slab) Len() int  { return len(s.Recs) }
func (s *Slab) Free() int { return SlabCap - len(s.Recs) }

// Reset empties the slab for refilling. The pool does this on recycle;
// callers only need it when reusing a slab they never submitted.
func (s *Slab) Reset() {
	s.Recs = s.recsBuf[:0]
	s.Ctxs = nil
}

// Retain adds one reference (one per sub-batch view handed off).
func (s *Slab) Retain() { s.refs.Add(1) }

// Release drops one reference; the last release recycles the slab into
// its pool. After calling Release the caller must not touch the slab.
func (s *Slab) Release() {
	if n := s.refs.Add(-1); n == 0 {
		if s.pool != nil {
			s.pool.put(s)
		}
	} else if n < 0 {
		panic("wire: slab over-released")
	}
}

// ensureCtxs materializes the trace-context slice, zero-filled in
// parallel with the records already present — the mixed-frame case
// where an untraced frame landed in the slab before a traced one.
func (s *Slab) ensureCtxs() {
	if s.Ctxs != nil {
		return
	}
	if s.ctxsBuf == nil {
		s.ctxsBuf = make([]TraceContext, 0, SlabCap)
	}
	s.Ctxs = s.ctxsBuf[:len(s.Recs)]
	for i := range s.Ctxs {
		s.Ctxs[i] = TraceContext{}
	}
}

// Append adds one record (the single-record submit shim and the JSONL
// replay batcher). It panics past SlabCap — bounds are the caller's
// contract, as with AppendFrame.
func (s *Slab) Append(rec Record) {
	if s.Recs == nil {
		s.Recs = s.recsBuf[:0]
	}
	s.Recs = append(s.Recs, rec)
	if s.Ctxs != nil {
		s.Ctxs = append(s.Ctxs, TraceContext{})
	}
}

// AppendTraced adds one record with its trace context.
func (s *Slab) AppendTraced(tr TracedRecord) {
	if s.Recs == nil {
		s.Recs = s.recsBuf[:0]
	}
	s.ensureCtxs()
	s.Recs = append(s.Recs, tr.Record)
	s.Ctxs = append(s.Ctxs, tr.Ctx)
}

// AppendRecordsPayload decodes a TypeRecords payload (alignment checked
// at the frame header) into the slab.
func (s *Slab) AppendRecordsPayload(payload []byte) error {
	n := len(payload) / RecordSize
	if n > s.Free() {
		return ErrSlabFull
	}
	return s.appendPlain(payload)
}

func (s *Slab) appendPlain(body []byte) error {
	if s.Recs == nil {
		s.Recs = s.recsBuf[:0]
	}
	for off := 0; off+RecordSize <= len(body); off += RecordSize {
		rec, err := DecodeRecord(body[off:])
		if err != nil {
			return err
		}
		s.Recs = append(s.Recs, rec)
		if s.Ctxs != nil {
			s.Ctxs = append(s.Ctxs, TraceContext{})
		}
	}
	return nil
}

// AppendTracedPayload decodes a TypeTracedRecords payload into the
// slab, keeping the trace contexts.
func (s *Slab) AppendTracedPayload(payload []byte) error {
	n := len(payload) / TracedRecordSize
	if n > s.Free() {
		return ErrSlabFull
	}
	return s.appendTraced(payload)
}

func (s *Slab) appendTraced(body []byte) error {
	if s.Recs == nil {
		s.Recs = s.recsBuf[:0]
	}
	s.ensureCtxs()
	for off := 0; off+TracedRecordSize <= len(body); off += TracedRecordSize {
		tr, err := decodeTracedRecord(body[off:])
		if err != nil {
			return err
		}
		s.Recs = append(s.Recs, tr.Record)
		s.Ctxs = append(s.Ctxs, tr.Ctx)
	}
	return nil
}

// AppendSealedPayload verifies and decodes a TypeSealed payload into
// the slab, returning the batch's cumulative sequence number.
func (s *Slab) AppendSealedPayload(payload []byte) (seq uint64, err error) {
	if len(payload) < SealedOverhead || (len(payload)-SealedOverhead)%RecordSize != 0 {
		return 0, fmt.Errorf("%w: sealed payload %d bytes", ErrBadFrame, len(payload))
	}
	if (len(payload)-SealedOverhead)/RecordSize > s.Free() {
		return 0, ErrSlabFull
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := binary.BigEndian.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return 0, fmt.Errorf("%w: sealed crc mismatch", ErrBadFrame)
	}
	return binary.BigEndian.Uint64(body[0:8]), s.appendPlain(body[8:])
}

// AppendForwardedPayload verifies and decodes a TypeForwarded payload
// into the slab, returning the relaying instance's origin id and the
// batch's cumulative sequence number in the forward stream.
func (s *Slab) AppendForwardedPayload(payload []byte) (origin, seq uint64, err error) {
	if len(payload) < ForwardedOverhead || (len(payload)-ForwardedOverhead)%RecordSize != 0 {
		return 0, 0, fmt.Errorf("%w: forwarded payload %d bytes", ErrBadFrame, len(payload))
	}
	if (len(payload)-ForwardedOverhead)/RecordSize > s.Free() {
		return 0, 0, ErrSlabFull
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := binary.BigEndian.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return 0, 0, fmt.Errorf("%w: forwarded crc mismatch", ErrBadFrame)
	}
	return binary.BigEndian.Uint64(body[0:8]), binary.BigEndian.Uint64(body[8:16]), s.appendPlain(body[16:])
}

// AppendTracedForwardedPayload verifies and decodes a
// TypeTracedForwarded payload into the slab, keeping the full
// forward-hop contexts (id, sent, routed, origin), and returning the
// relaying instance's origin id and the batch's cumulative sequence
// number in the forward stream.
func (s *Slab) AppendTracedForwardedPayload(payload []byte) (origin, seq uint64, err error) {
	if len(payload) < TracedForwardedOverhead || (len(payload)-TracedForwardedOverhead)%TracedFwdRecordSize != 0 {
		return 0, 0, fmt.Errorf("%w: traced forwarded payload %d bytes", ErrBadFrame, len(payload))
	}
	if (len(payload)-TracedForwardedOverhead)/TracedFwdRecordSize > s.Free() {
		return 0, 0, ErrSlabFull
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := binary.BigEndian.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return 0, 0, fmt.Errorf("%w: traced forwarded crc mismatch", ErrBadFrame)
	}
	origin = binary.BigEndian.Uint64(body[0:8])
	seq = binary.BigEndian.Uint64(body[8:16])
	if s.Recs == nil {
		s.Recs = s.recsBuf[:0]
	}
	s.ensureCtxs()
	for off := 16; off+TracedFwdRecordSize <= len(body); off += TracedFwdRecordSize {
		rec, err := DecodeRecord(body[off:])
		if err != nil {
			return 0, 0, err
		}
		s.Recs = append(s.Recs, rec)
		s.Ctxs = append(s.Ctxs, TraceContext{
			ID:     binary.BigEndian.Uint64(body[off+RecordSize : off+RecordSize+8]),
			Sent:   int64(binary.BigEndian.Uint64(body[off+RecordSize+8 : off+RecordSize+16])),
			Routed: int64(binary.BigEndian.Uint64(body[off+RecordSize+16 : off+RecordSize+24])),
			Origin: origin,
		})
	}
	return origin, seq, nil
}

// AppendTracedSealedPayload verifies and decodes a TypeTracedSealed
// payload into the slab, keeping contexts and returning the sequence.
func (s *Slab) AppendTracedSealedPayload(payload []byte) (seq uint64, err error) {
	if len(payload) < SealedOverhead || (len(payload)-SealedOverhead)%TracedRecordSize != 0 {
		return 0, fmt.Errorf("%w: traced sealed payload %d bytes", ErrBadFrame, len(payload))
	}
	if (len(payload)-SealedOverhead)/TracedRecordSize > s.Free() {
		return 0, ErrSlabFull
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := binary.BigEndian.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return 0, fmt.Errorf("%w: traced sealed crc mismatch", ErrBadFrame)
	}
	return binary.BigEndian.Uint64(body[0:8]), s.appendTraced(body[8:])
}

// AppendDatagramFrame decodes one complete record-bearing frame from b
// (the UDP entry point: TypeRecords or TypeTracedRecords) into the
// slab and returns the bytes consumed, so callers loop over packed
// datagrams. ErrSlabFull leaves b unconsumed.
func (s *Slab) AppendDatagramFrame(b []byte) (consumed int, err error) {
	ftype, n, err := checkHeader(b)
	if err != nil {
		return 0, err
	}
	if len(b) < HeaderSize+n {
		return 0, fmt.Errorf("%w: truncated payload: have %d of %d bytes",
			ErrBadFrame, len(b)-HeaderSize, n)
	}
	payload := b[HeaderSize : HeaderSize+n]
	switch ftype {
	case TypeRecords:
		err = s.AppendRecordsPayload(payload)
	case TypeTracedRecords:
		err = s.AppendTracedPayload(payload)
	default:
		return 0, fmt.Errorf("%w: frame type %d in a datagram", ErrBadFrame, ftype)
	}
	if err != nil {
		return 0, err
	}
	return HeaderSize + n, nil
}

// DropFront discards the first k records (and contexts) — the session
// server's dedup of an already-accepted retransmitted prefix.
func (s *Slab) DropFront(k int) {
	if k <= 0 {
		return
	}
	if k >= len(s.Recs) {
		s.Recs = s.Recs[:0]
		if s.Ctxs != nil {
			s.Ctxs = s.Ctxs[:0]
		}
		return
	}
	s.Recs = s.Recs[:copy(s.Recs, s.Recs[k:])]
	if s.Ctxs != nil {
		s.Ctxs = s.Ctxs[:copy(s.Ctxs, s.Ctxs[k:])]
	}
}

// Partition reorders the slab in place so that records are contiguous
// per victim shard (shard = victim mod nshards) and, within a shard's
// range, grouped by victim — one stable counting sort buys both the
// per-shard sub-batch views and the per-victim grouping the workers
// want, with no worker-side sort. Records that fail validation (topo
// id mismatch or victim outside [0, numNodes)) are moved to the tail
// [valid:], originals' relative order preserved everywhere.
//
// The returned group slice is slab-owned scratch, valid until the next
// Partition; the record views it describes stay valid until the last
// Release.
func (s *Slab) Partition(topoID uint32, numNodes, nshards int) (groups []ShardGroup, valid int) {
	recs := s.Recs
	traced := s.Ctxs != nil
	if cap(s.vc) < numNodes {
		s.vc = make([]int32, numNodes)
	}
	vc := s.vc[:numNodes]

	// Count per victim; remember each victim's first touch so the
	// count array can be re-zeroed in O(distinct victims).
	s.touched = s.touched[:0]
	for i := range recs {
		if recs[i].Topo != topoID || recs[i].Victim < 0 || int(recs[i].Victim) >= numNodes {
			continue
		}
		v := recs[i].Victim
		if vc[v] == 0 {
			s.touched = append(s.touched, v)
		}
		vc[v]++
		valid++
	}

	// Bucket order is shard-major, victim-minor: walking it yields each
	// shard's contiguous range already grouped by victim.
	slices.SortFunc(s.touched, func(a, b topology.NodeID) int {
		if sa, sb := int(a)%nshards, int(b)%nshards; sa != sb {
			return sa - sb
		}
		return int(a) - int(b)
	})
	s.groups = s.groups[:0]
	off := int32(0)
	for _, v := range s.touched {
		cnt := vc[v]
		vc[v] = off // count → running scatter offset
		sh := int(v) % nshards
		if n := len(s.groups); n > 0 && s.groups[n-1].Shard == sh {
			s.groups[n-1].End += int(cnt)
		} else {
			s.groups = append(s.groups, ShardGroup{Shard: sh, Start: int(off), End: int(off + cnt)})
		}
		off += cnt
	}

	// Scatter into the alternate buffer, invalid records to the tail.
	if s.recsAlt == nil {
		s.recsAlt = make([]Record, SlabCap)
	}
	dst := s.recsAlt[:len(recs)]
	var dstCtx []TraceContext
	if traced {
		if s.ctxsAlt == nil {
			s.ctxsAlt = make([]TraceContext, SlabCap)
		}
		dstCtx = s.ctxsAlt[:len(recs)]
	}
	bad := int32(valid)
	for i := range recs {
		var idx int32
		if recs[i].Topo != topoID || recs[i].Victim < 0 || int(recs[i].Victim) >= numNodes {
			idx = bad
			bad++
		} else {
			idx = vc[recs[i].Victim]
			vc[recs[i].Victim]++
		}
		dst[idx] = recs[i]
		if traced {
			dstCtx[idx] = s.Ctxs[i]
		}
	}
	for _, v := range s.touched {
		vc[v] = 0
	}

	// Swap the double buffers: the views live in what was the alternate.
	s.recsBuf, s.recsAlt = s.recsAlt[:0], s.recsBuf[:SlabCap]
	s.Recs = s.recsBuf[:len(recs)]
	if traced {
		s.ctxsBuf, s.ctxsAlt = s.ctxsAlt[:0], s.ctxsBuf[:cap(s.ctxsBuf)]
		if cap(s.ctxsAlt) < SlabCap {
			s.ctxsAlt = make([]TraceContext, SlabCap)
		}
		s.Ctxs = s.ctxsBuf[:len(recs)]
	}
	return s.groups, valid
}

// SlabPool recycles slabs through a fixed-capacity freelist. Gets past
// the freelist allocate; puts past it let the slab go to the garbage
// collector — the pool never blocks either direction. Outstanding
// counts slabs handed out and not yet fully released, so a drained
// service can assert it leaked nothing.
type SlabPool struct {
	free        chan *Slab
	outstanding atomic.Int64
}

// NewSlabPool builds a pool whose freelist retains up to n idle slabs.
func NewSlabPool(n int) *SlabPool {
	if n <= 0 {
		n = 16
	}
	return &SlabPool{free: make(chan *Slab, n)}
}

// Get returns an empty slab holding one reference for the caller.
func (p *SlabPool) Get() *Slab {
	p.outstanding.Add(1)
	var s *Slab
	select {
	case s = <-p.free:
	default:
		s = newSlab(p)
	}
	s.refs.Store(1)
	return s
}

func (p *SlabPool) put(s *Slab) {
	s.Reset()
	p.outstanding.Add(-1)
	select {
	case p.free <- s:
	default: // freelist full: let the GC have it
	}
}

// Outstanding reports slabs currently held by callers (gets minus full
// release cycles). Zero after every submitter and worker is done — the
// drain-time leak check.
func (p *SlabPool) Outstanding() int64 { return p.outstanding.Load() }
