// Package trace observes packets as they move through the fabric and
// logs one JSONL record per marking event — injection and every
// committed hop — without perturbing the scheme under observation. It
// is implemented as a transparent marking.Scheme wrapper, since the
// Figure 4 hook points (inject at the source switch, mark after the
// routing commit) are exactly the observation points a debugger wants.
package trace

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/topology"
)

// Event is one observed marking action.
type Event struct {
	Kind    string // "inject" or "forward"
	Seq     uint64 // packet sequence number (0 before netsim assigns one)
	Cur     topology.NodeID
	Next    topology.NodeID // forward only
	MFIn    uint16          // MF before the scheme ran
	MFOut   uint16          // MF after
	TTL     uint8
	SrcAddr packet.Addr
	DstAddr packet.Addr
}

// Tracer wraps an inner scheme, emitting a JSONL line per event. It is
// itself a marking.Scheme, so it drops into netsim, flitsim or manual
// walks unchanged. Writes are best-effort: the first write error is
// latched (Err) and further output is suppressed, so a broken sink
// cannot corrupt the simulation.
type Tracer struct {
	Inner marking.Scheme
	W     io.Writer

	// Filter, when set, limits output to events it returns true for.
	Filter func(Event) bool

	events uint64
	err    error
}

// New wraps inner, logging to w.
func New(inner marking.Scheme, w io.Writer) *Tracer {
	if inner == nil {
		inner = marking.Nop{}
	}
	return &Tracer{Inner: inner, W: w}
}

// Name reports the inner scheme's name with a trace marker.
func (t *Tracer) Name() string { return t.Inner.Name() + "+trace" }

// Unwrap exposes the inner scheme, so core.Cluster.DDPM and similar
// accessors see through the tracer.
func (t *Tracer) Unwrap() marking.Scheme { return t.Inner }

// Events returns the number of events emitted (post-filter).
func (t *Tracer) Events() uint64 { return atomic.LoadUint64(&t.events) }

// Err returns the latched sink error, if any.
func (t *Tracer) Err() error { return t.err }

func (t *Tracer) OnInject(pk *packet.Packet) {
	in := pk.Hdr.ID
	t.Inner.OnInject(pk)
	t.emit(Event{
		Kind: "inject", Seq: pk.Seq, Cur: pk.SrcNode,
		MFIn: in, MFOut: pk.Hdr.ID, TTL: pk.Hdr.TTL,
		SrcAddr: pk.Hdr.Src, DstAddr: pk.Hdr.Dst,
	})
}

func (t *Tracer) OnForward(cur, next topology.NodeID, pk *packet.Packet) {
	in := pk.Hdr.ID
	t.Inner.OnForward(cur, next, pk)
	t.emit(Event{
		Kind: "forward", Seq: pk.Seq, Cur: cur, Next: next,
		MFIn: in, MFOut: pk.Hdr.ID, TTL: pk.Hdr.TTL,
		SrcAddr: pk.Hdr.Src, DstAddr: pk.Hdr.Dst,
	})
}

func (t *Tracer) emit(e Event) {
	if t.err != nil || t.W == nil {
		return
	}
	if t.Filter != nil && !t.Filter(e) {
		return
	}
	// Hand-rolled JSON keeps the hot path allocation-light and the key
	// order fixed.
	var line string
	if e.Kind == "inject" {
		line = fmt.Sprintf(
			`{"kind":"inject","seq":%d,"node":%d,"mf_in":%d,"mf_out":%d,"ttl":%d,"src":%q,"dst":%q}`+"\n",
			e.Seq, e.Cur, e.MFIn, e.MFOut, e.TTL, e.SrcAddr.String(), e.DstAddr.String())
	} else {
		line = fmt.Sprintf(
			`{"kind":"forward","seq":%d,"cur":%d,"next":%d,"mf_in":%d,"mf_out":%d,"ttl":%d,"src":%q,"dst":%q}`+"\n",
			e.Seq, e.Cur, e.Next, e.MFIn, e.MFOut, e.TTL, e.SrcAddr.String(), e.DstAddr.String())
	}
	if _, err := io.WriteString(t.W, line); err != nil {
		t.err = err
		return
	}
	atomic.AddUint64(&t.events, 1)
}
