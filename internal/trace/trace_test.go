package trace

import (
	"encoding/json"
	"errors"
	"repro/internal/eventq"
	"strings"
	"testing"

	"repro/internal/marking"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestTracerTransparency(t *testing.T) {
	// The traced scheme must produce byte-identical MFs to the bare
	// scheme on the same path.
	m := topology.NewMesh2D(4)
	bare, _ := marking.NewDDPM(m)
	traced, _ := marking.NewDDPM(m)
	var sb strings.Builder
	tr := New(traced, &sb)

	path := []topology.NodeID{0, 1, 2, 6, 10}
	pkA, pkB := &packet.Packet{}, &packet.Packet{}
	bare.OnInject(pkA)
	tr.OnInject(pkB)
	for i := 0; i+1 < len(path); i++ {
		bare.OnForward(path[i], path[i+1], pkA)
		tr.OnForward(path[i], path[i+1], pkB)
	}
	if pkA.Hdr.ID != pkB.Hdr.ID {
		t.Errorf("tracer perturbed the MF: %04x vs %04x", pkA.Hdr.ID, pkB.Hdr.ID)
	}
	if tr.Events() != 5 { // 1 inject + 4 forwards
		t.Errorf("Events = %d, want 5", tr.Events())
	}
}

func TestTracerOutputIsValidJSONL(t *testing.T) {
	m := topology.NewMesh2D(4)
	inner, _ := marking.NewDDPM(m)
	var sb strings.Builder
	tr := New(inner, &sb)
	pk := &packet.Packet{Hdr: packet.Header{TTL: 9, Src: 1, Dst: 2}}
	tr.OnInject(pk)
	tr.OnForward(0, 1, pk)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("inject line not JSON: %v", err)
	}
	if obj["kind"] != "inject" {
		t.Errorf("kind = %v", obj["kind"])
	}
	if err := json.Unmarshal([]byte(lines[1]), &obj); err != nil {
		t.Fatalf("forward line not JSON: %v", err)
	}
	if obj["kind"] != "forward" || obj["cur"] != float64(0) || obj["next"] != float64(1) {
		t.Errorf("forward obj = %v", obj)
	}
}

func TestTracerFilter(t *testing.T) {
	var sb strings.Builder
	tr := New(nil, &sb)
	tr.Filter = func(e Event) bool { return e.Kind == "forward" }
	pk := &packet.Packet{}
	tr.OnInject(pk)
	tr.OnForward(0, 1, pk)
	if tr.Events() != 1 {
		t.Errorf("Events = %d after filtering", tr.Events())
	}
	if strings.Contains(sb.String(), "inject") {
		t.Error("filtered event emitted")
	}
}

type failAfter struct{ n, limit int }

func (f *failAfter) Write(p []byte) (int, error) {
	f.n++
	if f.n > f.limit {
		return 0, errors.New("sink broke")
	}
	return len(p), nil
}

func TestTracerLatchesSinkError(t *testing.T) {
	fw := &failAfter{limit: 1}
	tr := New(nil, fw)
	pk := &packet.Packet{}
	tr.OnInject(pk)        // ok
	tr.OnForward(0, 1, pk) // sink breaks
	tr.OnForward(1, 2, pk) // suppressed
	if tr.Err() == nil {
		t.Error("sink error not latched")
	}
	if fw.n != 2 {
		t.Errorf("sink written %d times, want 2 (then suppressed)", fw.n)
	}
	if tr.Events() != 1 {
		t.Errorf("Events = %d", tr.Events())
	}
}

func TestTracerInsideNetsim(t *testing.T) {
	// End to end: the tracer rides the fabric and logs one inject plus
	// one forward per hop; DDPM identification through it stays exact.
	m := topology.NewMesh2D(4)
	d, _ := marking.NewDDPM(m)
	var sb strings.Builder
	tr := New(d, &sb)
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	n, err := netsim.New(netsim.Config{Net: m, Router: r, Scheme: tr, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	var delivered *packet.Packet
	n.OnDeliver(func(_ eventq.Time, pk *packet.Packet) { delivered = pk })
	src := m.IndexOf(topology.Coord{0, 0})
	dst := m.IndexOf(topology.Coord{3, 3})
	n.Inject(packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 0))
	n.RunAll(10000)
	if delivered == nil {
		t.Fatal("not delivered")
	}
	if got, ok := d.IdentifySource(dst, delivered.Hdr.ID); !ok || got != src {
		t.Errorf("identified %d, want %d", got, src)
	}
	// 1 inject + 6 forwards.
	if tr.Events() != 7 {
		t.Errorf("Events = %d, want 7", tr.Events())
	}
	if tr.Name() != "ddpm+trace" {
		t.Errorf("Name = %q", tr.Name())
	}
}
