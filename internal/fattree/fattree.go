// Package fattree implements the paper's §6.3 future-work direction:
// source identification in *indirect* networks. It models the k-ary
// n-tree fat tree (Petrini–Vanneschi) that commodity clusters use, with
// fully adaptive up-phase routing, and a DDPM-analog marking scheme —
// port stamping — that identifies the source leaf from a single packet.
//
// Why DDPM itself does not carry over: in a direct network every
// switch pairs with a compute node and coordinates form a module over
// per-hop displacements, so the MF can accumulate D − S. In a fat tree
// compute nodes exist only at the leaves and switches have no leaf
// coordinate, so there is no displacement to accumulate. The structural
// fact that replaces it: on the ascending phase, the DOWN-port through
// which a packet enters each switch equals one digit of the source
// leaf's k-ary address, regardless of which up-port the adaptive router
// chose. Stamping those input ports into the MF therefore records the
// source address digits; the victim completes the high digits from its
// own address (source and destination agree above the ascent level).
//
// Field cost: n·⌈log₂k⌉ digit bits + ⌈log₂(n+1)⌉ ascent bits — within
// the 16-bit MF up to 4096-leaf trees (e.g. 4-ary 6-tree, 2-ary
// 12-tree), the same order as DDPM's Table 3.
package fattree

import (
	"fmt"
)

// LeafID identifies a compute node, 0 .. k^n − 1. The k-ary address
// digits are (a_{n−1}, …, a_0) with a_{n−1} most significant.
type LeafID int

// SwitchID identifies a switch by level and index. Level 0 switches
// attach the leaves; level n−1 switches are the roots. Each level has
// k^{n−1} switches, identified by n−1 digits (w_{n−2}, …, w_0).
type SwitchID struct {
	Level int
	Index int
}

// Tree is a k-ary n-tree: k^n leaves, n levels of k^{n−1} switches with
// k down-ports and (except the roots) k up-ports each.
type Tree struct {
	K, N     int
	leaves   int
	perLevel int
}

// New constructs a k-ary n-tree. k ≥ 2, n ≥ 1, and the leaf count is
// capped at 2^20 for simulation sanity.
func New(k, n int) (*Tree, error) {
	if k < 2 || n < 1 {
		return nil, fmt.Errorf("fattree: need k >= 2 and n >= 1, got k=%d n=%d", k, n)
	}
	leaves := 1
	for i := 0; i < n; i++ {
		leaves *= k
		if leaves > 1<<20 {
			return nil, fmt.Errorf("fattree: %d-ary %d-tree exceeds the 1M-leaf limit", k, n)
		}
	}
	perLevel := leaves / k
	return &Tree{K: k, N: n, leaves: leaves, perLevel: perLevel}, nil
}

// Name returns e.g. "fattree-4ary-3tree".
func (t *Tree) Name() string { return fmt.Sprintf("fattree-%dary-%dtree", t.K, t.N) }

// NumLeaves returns k^n; NumSwitches n·k^{n−1}.
func (t *Tree) NumLeaves() int   { return t.leaves }
func (t *Tree) NumSwitches() int { return t.N * t.perLevel }

// Digits decomposes a leaf address into its n base-k digits, most
// significant first: index 0 holds a_{n−1}.
func (t *Tree) Digits(l LeafID) []int {
	if l < 0 || int(l) >= t.leaves {
		panic(fmt.Sprintf("fattree: leaf %d out of range", l))
	}
	d := make([]int, t.N)
	v := int(l)
	for i := t.N - 1; i >= 0; i-- {
		d[i] = v % t.K
		v /= t.K
	}
	return d
}

// LeafOf recomposes a leaf from digits (most significant first).
func (t *Tree) LeafOf(digits []int) LeafID {
	if len(digits) != t.N {
		panic(fmt.Sprintf("fattree: %d digits, want %d", len(digits), t.N))
	}
	v := 0
	for _, d := range digits {
		if d < 0 || d >= t.K {
			panic(fmt.Sprintf("fattree: digit %d out of base %d", d, t.K))
		}
		v = v*t.K + d
	}
	return LeafID(v)
}

// switchDigits decomposes a switch index into its n−1 digits
// (w_{n−2}, …, w_0), most significant first at position 0.
func (t *Tree) switchDigits(idx int) []int {
	d := make([]int, t.N-1)
	v := idx
	for i := t.N - 2; i >= 0; i-- {
		d[i] = v % t.K
		v /= t.K
	}
	return d
}

func (t *Tree) switchIndex(digits []int) int {
	v := 0
	for _, d := range digits {
		v = v*t.K + d
	}
	return v
}

// LeafSwitch returns the level-0 switch a leaf attaches to and the
// down-port used: switch digits are the leaf's high n−1 digits, the
// port is the low digit a_0.
func (t *Tree) LeafSwitch(l LeafID) (SwitchID, int) {
	d := t.Digits(l)
	return SwitchID{Level: 0, Index: t.switchIndex(d[:t.N-1])}, d[t.N-1]
}

// LeafAtPort inverts LeafSwitch.
func (t *Tree) LeafAtPort(sw SwitchID, port int) LeafID {
	if sw.Level != 0 {
		panic("fattree: leaves attach to level-0 switches only")
	}
	digits := append(t.switchDigits(sw.Index), port)
	return t.LeafOf(digits)
}

// Up returns the level l+1 switch reached from sw through up-port u,
// and the down-port on the upper switch through which the packet
// enters. In the Petrini–Vanneschi wiring, switch <w, l> connects to
// every level l+1 switch differing from w only in digit position
// (n−2−l); the upper switch's down-port equals w's digit at that
// position — which, crucially, is one digit of every leaf below sw.
func (t *Tree) Up(sw SwitchID, u int) (SwitchID, int) {
	if sw.Level >= t.N-1 {
		panic(fmt.Sprintf("fattree: no up links from root level %d", sw.Level))
	}
	if u < 0 || u >= t.K {
		panic(fmt.Sprintf("fattree: up port %d out of range", u))
	}
	d := t.switchDigits(sw.Index)
	pos := t.N - 2 - sw.Level
	inPort := d[pos]
	d[pos] = u
	return SwitchID{Level: sw.Level + 1, Index: t.switchIndex(d)}, inPort
}

// Down returns the level l−1 switch reached from sw through down-port
// p: the digit freed at that level is set to p.
func (t *Tree) Down(sw SwitchID, p int) SwitchID {
	if sw.Level == 0 {
		panic("fattree: level-0 down-ports reach leaves; use LeafAtPort")
	}
	if p < 0 || p >= t.K {
		panic(fmt.Sprintf("fattree: down port %d out of range", p))
	}
	d := t.switchDigits(sw.Index)
	pos := t.N - 1 - sw.Level
	d[pos] = p
	return SwitchID{Level: sw.Level - 1, Index: t.switchIndex(d)}
}

// NCALevel returns the lowest switch level at which src and dst share
// an ancestor: 0 when they attach to the same level-0 switch, otherwise
// one past the most significant differing digit's distance from the
// top. A minimal route ascends exactly to this level.
func (t *Tree) NCALevel(src, dst LeafID) int {
	sd, dd := t.Digits(src), t.Digits(dst)
	for i := 0; i < t.N-1; i++ {
		if sd[i] != dd[i] {
			return t.N - 1 - i
		}
	}
	return 0
}
