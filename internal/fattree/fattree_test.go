package fattree

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
)

func TestTreeShape(t *testing.T) {
	tr, err := New(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 64 {
		t.Errorf("leaves = %d, want 64", tr.NumLeaves())
	}
	if tr.NumSwitches() != 3*16 {
		t.Errorf("switches = %d, want 48", tr.NumSwitches())
	}
	if tr.Name() == "" {
		t.Error("empty name")
	}
	for _, bad := range [][2]int{{1, 3}, {2, 0}, {2, 21}} {
		if _, err := New(bad[0], bad[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	tr, _ := New(3, 4)
	for l := 0; l < tr.NumLeaves(); l++ {
		d := tr.Digits(LeafID(l))
		if got := tr.LeafOf(d); got != LeafID(l) {
			t.Fatalf("digit round trip failed for %d", l)
		}
	}
}

func TestLeafSwitchAttachment(t *testing.T) {
	tr, _ := New(2, 3) // 8 leaves, 4 switches per level
	for l := 0; l < tr.NumLeaves(); l++ {
		sw, port := tr.LeafSwitch(LeafID(l))
		if sw.Level != 0 {
			t.Fatalf("leaf attached to level %d", sw.Level)
		}
		if back := tr.LeafAtPort(sw, port); back != LeafID(l) {
			t.Fatalf("LeafAtPort round trip failed for %d", l)
		}
	}
	// Exactly K leaves per level-0 switch.
	counts := map[int]int{}
	for l := 0; l < tr.NumLeaves(); l++ {
		sw, _ := tr.LeafSwitch(LeafID(l))
		counts[sw.Index]++
	}
	for idx, c := range counts {
		if c != tr.K {
			t.Errorf("switch %d attaches %d leaves, want %d", idx, c, tr.K)
		}
	}
}

func TestUpDownInverse(t *testing.T) {
	tr, _ := New(3, 3)
	for idx := 0; idx < tr.NumLeaves()/tr.K; idx++ {
		for lvl := 0; lvl < tr.N-1; lvl++ {
			sw := SwitchID{Level: lvl, Index: idx}
			for u := 0; u < tr.K; u++ {
				upper, inPort := tr.Up(sw, u)
				if upper.Level != lvl+1 {
					t.Fatalf("Up level = %d", upper.Level)
				}
				// Descending through the recorded down-port returns to sw.
				back := tr.Down(upper, inPortToDigit(tr, sw, lvl))
				_ = inPort
				if back != sw {
					t.Fatalf("Down(Up(%v,%d)) = %v", sw, u, back)
				}
			}
		}
	}
}

// inPortToDigit extracts the digit the upper switch's down-port must
// take to reach sw — sw's digit at the freed position.
func inPortToDigit(tr *Tree, sw SwitchID, lvl int) int {
	return tr.switchDigits(sw.Index)[tr.N-2-lvl]
}

func TestNCALevel(t *testing.T) {
	tr, _ := New(2, 3) // leaves 0..7, digits (a2,a1,a0)
	cases := []struct {
		s, d LeafID
		want int
	}{
		{0b000, 0b001, 0}, // differ in a0 only: same level-0 switch
		{0b000, 0b010, 1}, // differ in a1: level 1
		{0b000, 0b100, 2}, // differ in a2: level 2 (root)
		{0b011, 0b111, 2},
		{0b101, 0b100, 0},
		{0b010, 0b010, 0}, // same leaf
	}
	for _, tc := range cases {
		if got := tr.NCALevel(tc.s, tc.d); got != tc.want {
			t.Errorf("NCALevel(%03b,%03b) = %d, want %d", tc.s, tc.d, got, tc.want)
		}
	}
}

func TestRouteReachesDestination(t *testing.T) {
	tr, _ := New(4, 3)
	r := rng.NewStream(1)
	choose := RandomUp(rng.NewStream(2))
	for trial := 0; trial < 500; trial++ {
		src := LeafID(r.Intn(tr.NumLeaves()))
		dst := LeafID(r.Intn(tr.NumLeaves()))
		nca := tr.NCALevel(src, dst)
		hops, err := tr.Route(src, dst, nca, choose)
		if err != nil {
			t.Fatal(err)
		}
		// Path shape: ascend nca levels, descend nca levels — 2·nca+1
		// switches.
		if len(hops) != 2*nca+1 {
			t.Fatalf("route %d->%d: %d hops, want %d", src, dst, len(hops), 2*nca+1)
		}
		last := hops[len(hops)-1].Switch
		wantSw, _ := tr.LeafSwitch(dst)
		if last != wantSw {
			t.Fatalf("route %d->%d ends at %v, want %v", src, dst, last, wantSw)
		}
	}
}

func TestRouteValidation(t *testing.T) {
	tr, _ := New(2, 3)
	if _, err := tr.Route(0, 7, 0, nil); err == nil {
		t.Error("ascent below NCA accepted")
	}
	if _, err := tr.Route(0, 1, 5, nil); err == nil {
		t.Error("ascent above roots accepted")
	}
	bad := func(SwitchID, int) int { return 99 }
	if _, err := tr.Route(0, 7, 2, bad); err == nil {
		t.Error("bad chooser accepted")
	}
}

func TestStamperIdentifiesSource(t *testing.T) {
	// The headline extension result: single-packet identification on an
	// indirect network, robust to adaptive up-routing, spoofing and MF
	// preloads.
	for _, cfg := range [][2]int{{2, 3}, {2, 12}, {4, 3}, {4, 6}, {3, 4}} {
		tr, err := New(cfg[0], cfg[1])
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStamper(tr)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		r := rng.NewStream(uint64(cfg[0]*100 + cfg[1]))
		choose := RandomUp(rng.NewStream(99))
		for trial := 0; trial < 400; trial++ {
			src := LeafID(r.Intn(tr.NumLeaves()))
			dst := LeafID(r.Intn(tr.NumLeaves()))
			hops, err := tr.Route(src, dst, tr.NCALevel(src, dst), choose)
			if err != nil {
				t.Fatal(err)
			}
			pk := &packet.Packet{}
			pk.Hdr.ID = uint16(r.Intn(1 << 16)) // hostile preload
			st.Apply(pk, hops)
			got, ok := st.Identify(dst, pk.Hdr.ID)
			if !ok || got != src {
				t.Fatalf("%s: identified %d, want %d (mf %016b)", tr.Name(), got, src, pk.Hdr.ID)
			}
		}
	}
}

func TestStamperRobustToNonMinimalAscent(t *testing.T) {
	// Ascending above the NCA (adaptive routers may, for load balance)
	// records MORE source digits — identification still exact.
	tr, _ := New(2, 4)
	st, _ := NewStamper(tr)
	r := rng.NewStream(5)
	choose := RandomUp(rng.NewStream(6))
	for trial := 0; trial < 300; trial++ {
		src := LeafID(r.Intn(tr.NumLeaves()))
		dst := LeafID(r.Intn(tr.NumLeaves()))
		ascend := tr.NCALevel(src, dst) + r.Intn(tr.N-tr.NCALevel(src, dst))
		hops, err := tr.Route(src, dst, ascend, choose)
		if err != nil {
			t.Fatal(err)
		}
		pk := &packet.Packet{}
		st.Apply(pk, hops)
		if got, ok := st.Identify(dst, pk.Hdr.ID); !ok || got != src {
			t.Fatalf("ascend=%d: identified %d, want %d", ascend, got, src)
		}
	}
}

func TestStamperRejectsMalformedCount(t *testing.T) {
	tr, _ := New(2, 4) // count field has 3 bits, valid counts 1..4
	st, _ := NewStamper(tr)
	// count = 0 and count > n are invalid.
	if _, ok := st.Identify(0, 0); ok {
		t.Error("count 0 accepted")
	}
	bad := uint16(7) << (tr.N * 1) // count 7 > n=4 with 1-bit digits
	if _, ok := st.Identify(0, bad); ok {
		t.Error("oversized count accepted")
	}
	// Out-of-base digits are invalid for non-power-of-two arity.
	tr3, _ := New(3, 3) // 2-bit digits, digit 3 invalid
	st3, _ := NewStamper(tr3)
	badDigit := uint16(3) | uint16(1)<<(tr3.N*2) // digit_0 = 3, count 1
	if _, ok := st3.Identify(0, badDigit); ok {
		t.Error("out-of-base digit accepted")
	}
}

func TestStamperScalability(t *testing.T) {
	// The fat-tree analog of Table 3.
	n, leaves := MaxLeavesIn16Bits(2)
	if n != 12 || leaves != 4096 {
		t.Errorf("binary fat tree max = %d-tree (%d leaves), want 12 (4096)", n, leaves)
	}
	n, leaves = MaxLeavesIn16Bits(4)
	if n != 6 || leaves != 4096 {
		t.Errorf("4-ary fat tree max = %d-tree (%d leaves), want 6 (4096)", n, leaves)
	}
	if _, err := NewStamper(mustTree(t, 2, 13)); err == nil {
		t.Error("13-level binary stamper fit 16 bits")
	}
}

func mustTree(t *testing.T, k, n int) *Tree {
	t.Helper()
	tr, err := New(k, n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStamperErasesPreload(t *testing.T) {
	tr, _ := New(2, 3)
	st, _ := NewStamper(tr)
	pk := &packet.Packet{}
	pk.Hdr.ID = 0xFFFF
	st.StampLeafInjection(pk, 1)
	// Only digit 0 and count survive.
	got, ok := st.Identify(tr.LeafOf([]int{1, 1, 0}), pk.Hdr.ID)
	if !ok || got != tr.LeafOf([]int{1, 1, 1}) {
		t.Errorf("identified %d after preload erase", got)
	}
}
