package fattree

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
)

func BenchmarkRoute(b *testing.B) {
	tr, _ := New(4, 6) // 4096 leaves
	choose := RandomUp(rng.NewStream(1))
	r := rng.NewStream(2)
	for i := 0; i < b.N; i++ {
		src := LeafID(r.Intn(tr.NumLeaves()))
		dst := LeafID(r.Intn(tr.NumLeaves()))
		if _, err := tr.Route(src, dst, tr.NCALevel(src, dst), choose); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStampAndIdentify(b *testing.B) {
	tr, _ := New(4, 6)
	st, _ := NewStamper(tr)
	choose := RandomUp(rng.NewStream(3))
	r := rng.NewStream(4)
	src := LeafID(r.Intn(tr.NumLeaves()))
	dst := LeafID(r.Intn(tr.NumLeaves()))
	hops, _ := tr.Route(src, dst, tr.NCALevel(src, dst), choose)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk := &packet.Packet{}
		st.Apply(pk, hops)
		if got, ok := st.Identify(dst, pk.Hdr.ID); !ok || got != src {
			b.Fatal("misidentified")
		}
	}
}

func BenchmarkNCALevel(b *testing.B) {
	tr, _ := New(2, 12)
	n := tr.NumLeaves()
	for i := 0; i < b.N; i++ {
		_ = tr.NCALevel(LeafID(i%n), LeafID((i*31+7)%n))
	}
}
