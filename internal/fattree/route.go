package fattree

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/rng"
)

// Hop is one switch traversal on a fat-tree route.
type Hop struct {
	Switch SwitchID
	// InPort is the port through which the packet entered the switch:
	// a down-port index on the ascending phase (the digit the stamper
	// records), an up-port index on the descending phase.
	InPort int
	Up     bool // true while ascending
}

// UpChooser selects the up-port at each ascending hop — the fat tree's
// adaptivity lives entirely here (any up-port works).
type UpChooser func(sw SwitchID, k int) int

// RandomUp picks uniformly random up-ports.
func RandomUp(r *rng.Stream) UpChooser {
	return func(_ SwitchID, k int) int { return r.Intn(k) }
}

// FirstUp always picks port 0 (deterministic routing).
func FirstUp(_ SwitchID, _ int) int { return 0 }

// Route computes an up/down path from src to dst ascending exactly to
// level ascend (which must be ≥ NCALevel; passing a larger value models
// non-minimal ascent). The returned hops include every switch visited
// in order.
func (t *Tree) Route(src, dst LeafID, ascend int, choose UpChooser) ([]Hop, error) {
	if ascend < t.NCALevel(src, dst) {
		return nil, fmt.Errorf("fattree: ascent level %d below NCA %d", ascend, t.NCALevel(src, dst))
	}
	if ascend > t.N-1 {
		return nil, fmt.Errorf("fattree: ascent level %d above roots (%d)", ascend, t.N-1)
	}
	if choose == nil {
		choose = FirstUp
	}
	var hops []Hop
	sw, port := t.LeafSwitch(src)
	hops = append(hops, Hop{Switch: sw, InPort: port, Up: true})
	// Ascend.
	for sw.Level < ascend {
		u := choose(sw, t.K)
		if u < 0 || u >= t.K {
			return nil, fmt.Errorf("fattree: chooser returned bad up-port %d", u)
		}
		next, inPort := t.Up(sw, u)
		sw = next
		hops = append(hops, Hop{Switch: sw, InPort: inPort, Up: true})
	}
	// Descend deterministically toward dst. The stamper ignores
	// descending hops; InPort records the chosen down-port for tracing.
	dd := t.Digits(dst)
	for sw.Level > 0 {
		digit := dd[t.N-1-sw.Level] // leaf digit a_{level}
		sw = t.Down(sw, digit)
		hops = append(hops, Hop{Switch: sw, InPort: digit, Up: false})
	}
	return hops, nil
}

// ---------------------------------------------------------------------
// Port stamping: the DDPM analog for fat trees.
// ---------------------------------------------------------------------

// Stamper is the switch-side marking scheme. MF layout, low bits first:
//
//	[ digit_0 | digit_1 | … | digit_{n−1} | ascent count ]
//
// with ⌈log₂k⌉ bits per digit and ⌈log₂(n+1)⌉ ascent bits. On the
// ascending phase each switch writes its input down-port into the digit
// slot for its level and bumps the ascent count; descending switches
// leave the MF untouched. The level-0 injection stamp also zeroes the
// rest of the field, erasing attacker preloads (the DDPM inject rule).
type Stamper struct {
	t         *Tree
	digitBits int
	countBits int
}

// NewStamper validates that the layout fits the 16-bit MF.
func NewStamper(t *Tree) (*Stamper, error) {
	db := bitsFor(t.K)
	cb := bitsFor(t.N + 1)
	total := t.N*db + cb
	if total > 16 {
		return nil, fmt.Errorf("fattree: %s needs %d MF bits (%d digits × %d + %d count), have 16",
			t.Name(), total, t.N, db, cb)
	}
	return &Stamper{t: t, digitBits: db, countBits: cb}, nil
}

// bitsFor returns ⌈log₂ v⌉ for v ≥ 2 (bits to index v values).
func bitsFor(v int) int {
	b := 0
	for x := v - 1; x > 0; x >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// Bits returns the MF bits used.
func (s *Stamper) Bits() int { return s.t.N*s.digitBits + s.countBits }

// StampLeafInjection runs at the level-0 switch when the packet arrives
// from its source leaf on down-port p: MF := 0, digit_0 := p, count := 1.
func (s *Stamper) StampLeafInjection(pk *packet.Packet, port int) {
	pk.Hdr.ID = 0
	s.setDigit(pk, 0, port)
	s.setCount(pk, 1)
}

// StampUp runs at each level ≥ 1 switch the packet *ascends into*,
// with the down-port it entered through: digit_{level} := port,
// count := level + 1.
func (s *Stamper) StampUp(pk *packet.Packet, level, port int) {
	s.setDigit(pk, level, port)
	s.setCount(pk, level+1)
}

// Apply walks a Route result and applies the stamps exactly as the
// switches on the path would.
func (s *Stamper) Apply(pk *packet.Packet, hops []Hop) {
	for i, h := range hops {
		if !h.Up {
			break
		}
		if i == 0 {
			s.StampLeafInjection(pk, h.InPort)
		} else {
			s.StampUp(pk, h.Switch.Level, h.InPort)
		}
	}
}

// Identify recovers the source leaf at destination dst: the stamped
// digits cover a_0 … a_{count−1}; the higher digits are copied from the
// destination's own address (source and destination share them above
// the ascent level). ok is false for malformed counts.
func (s *Stamper) Identify(dst LeafID, mf uint16) (LeafID, bool) {
	count := int(mf >> (s.t.N * s.digitBits) & (1<<s.countBits - 1))
	if count < 1 || count > s.t.N {
		return -1, false
	}
	digits := s.t.Digits(dst)
	for j := 0; j < count; j++ {
		d := int(mf >> (j * s.digitBits) & (1<<s.digitBits - 1))
		if d >= s.t.K {
			return -1, false
		}
		digits[s.t.N-1-j] = d
	}
	return s.t.LeafOf(digits), true
}

func (s *Stamper) setDigit(pk *packet.Packet, j, d int) {
	mask := uint16(1<<s.digitBits-1) << (j * s.digitBits)
	pk.Hdr.ID = pk.Hdr.ID&^mask | uint16(d)<<(j*s.digitBits)&mask
}

func (s *Stamper) setCount(pk *packet.Packet, c int) {
	shift := s.t.N * s.digitBits
	mask := uint16(1<<s.countBits-1) << shift
	pk.Hdr.ID = pk.Hdr.ID&^mask | uint16(c)<<shift&mask
}

// MaxLeavesIn16Bits reports, for arity k, the largest n (and leaf
// count) whose stamp layout fits the MF — the fat-tree analog of the
// paper's Table 3.
func MaxLeavesIn16Bits(k int) (n, leaves int) {
	for cand := 1; ; cand++ {
		t, err := New(k, cand)
		if err != nil {
			return n, leaves
		}
		if _, err := NewStamper(t); err != nil {
			return n, leaves
		}
		n, leaves = cand, t.NumLeaves()
	}
}
