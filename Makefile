GO ?= go
BIN := bin

.PHONY: check vet lint build race bench bench-gate fuzz-smoke run-ddpmd clean

## check: lint, build, test and fuzz-smoke everything (the tier-1 gate)
check: lint
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) fuzz-smoke

## vet: static analysis only
vet:
	$(GO) vet ./...

## lint: vet + gofmt drift + staticcheck when it's on PATH (CI installs
## it; offline dev machines degrade to vet/gofmt with a note)
lint: vet
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

## build: compile the command binaries into bin/ (never the repo root)
build:
	$(GO) build -o $(BIN)/ ./cmd/...

## race: run the internal packages under the race detector
race:
	$(GO) test -race ./internal/...

## bench: run the engine + pipeline benchmarks and refresh BENCH_netsim.json
bench:
	$(GO) run ./cmd/benchjson -o BENCH_netsim.json
	$(GO) test ./internal/netsim/ -run xxx -bench . -benchmem

## bench-gate: fail if PipelineThroughput regressed >10% vs the
## committed baseline (re-measures on this machine)
bench-gate:
	$(GO) run ./cmd/benchjson -check BENCH_netsim.json -tolerance 0.10

## fuzz-smoke: short fuzzing passes over the wire codec and DDPM marking
## (go test allows one -fuzz target per invocation)
fuzz-smoke:
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzRecordRoundTrip -fuzztime 5s
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzReader -fuzztime 5s
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzResyncReader -fuzztime 5s
	$(GO) test ./internal/marking/ -run xxx -fuzz FuzzDDPMMarkIdentify -fuzztime 5s

## run-ddpmd: start the daemon on an 8x8 torus with the default ports
run-ddpmd:
	$(GO) run ./cmd/ddpmd serve -topo torus -dims 8x8 -tcp :7420 -http :7421

## clean: remove built binaries
clean:
	rm -rf $(BIN)
