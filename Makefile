GO ?= go

.PHONY: check race bench

## check: vet, build and test everything (the tier-1 gate)
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

## race: run the internal packages under the race detector
race:
	$(GO) test -race ./internal/...

## bench: run the engine benchmarks and refresh BENCH_netsim.json
bench:
	$(GO) run ./cmd/benchjson -o BENCH_netsim.json
	$(GO) test ./internal/netsim/ -run xxx -bench . -benchmem
