GO ?= go
BIN := bin

.PHONY: check vet build race bench fuzz-smoke run-ddpmd clean

## check: vet, build, test and fuzz-smoke everything (the tier-1 gate)
check: vet
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) fuzz-smoke

## vet: static analysis only
vet:
	$(GO) vet ./...

## build: compile the command binaries into bin/ (never the repo root)
build:
	$(GO) build -o $(BIN)/ ./cmd/...

## race: run the internal packages under the race detector
race:
	$(GO) test -race ./internal/...

## bench: run the engine + pipeline benchmarks and refresh BENCH_netsim.json
bench:
	$(GO) run ./cmd/benchjson -o BENCH_netsim.json
	$(GO) test ./internal/netsim/ -run xxx -bench . -benchmem

## fuzz-smoke: short fuzzing passes over the wire codec and DDPM marking
## (go test allows one -fuzz target per invocation)
fuzz-smoke:
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzRecordRoundTrip -fuzztime 5s
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzReader -fuzztime 5s
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzResyncReader -fuzztime 5s
	$(GO) test ./internal/marking/ -run xxx -fuzz FuzzDDPMMarkIdentify -fuzztime 5s

## run-ddpmd: start the daemon on an 8x8 torus with the default ports
run-ddpmd:
	$(GO) run ./cmd/ddpmd serve -topo torus -dims 8x8 -tcp :7420 -http :7421

## clean: remove built binaries
clean:
	rm -rf $(BIN)
