GO ?= go
BIN := bin

.PHONY: check vet lint build race bench bench-gate bench-profile fuzz-smoke trace-smoke cluster-smoke fleet-trace-smoke run-ddpmd clean

## check: lint, build, test, fuzz-smoke and trace-smoke everything (the
## tier-1 gate). The clustered chaos e2e — kill the victim's owner
## mid-campaign, survivors take over, the owner rejoins and gets its
## state handed back — and the forwarding-gate scan-suppression e2e run
## under the race detector here because their value is precisely their
## concurrency.
check: lint
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -count=1 -run 'TestClusterChaosKillOwnerMidCampaign|TestClusterScanSuppression' ./internal/cluster/
	$(MAKE) fuzz-smoke
	$(MAKE) trace-smoke

## vet: static analysis only
vet:
	$(GO) vet ./...

## lint: vet + gofmt drift + staticcheck when it's on PATH (CI installs
## it; offline dev machines degrade to vet/gofmt with a note)
lint: vet
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

## build: compile the command binaries into bin/ (never the repo root)
build:
	$(GO) build -o $(BIN)/ ./cmd/...

## race: run the internal packages under the race detector
race:
	$(GO) test -race ./internal/...

## cluster-smoke: boot a three-instance fleet wired as one cluster,
## spray a seeded flood across all of them with loadgen -targets (its
## exit code asserts zero loss), and require every instance to report
## the full fleet alive with records forwarded between owners. A fourth
## instance then joins the running fleet with -join — knowing only one
## member — and every instance must converge on 4/4 alive.
cluster-smoke: build
	@set -e; \
	$(BIN)/ddpmd serve -topo torus -dims 8x8 -tcp 127.0.0.1:27420 -http 127.0.0.1:27421 \
		-cluster 127.0.0.1:27420 -peers 127.0.0.1:27430,127.0.0.1:27440 >/dev/null & \
	p1=$$!; \
	$(BIN)/ddpmd serve -topo torus -dims 8x8 -tcp 127.0.0.1:27430 -http 127.0.0.1:27431 \
		-cluster 127.0.0.1:27430 -peers 127.0.0.1:27420,127.0.0.1:27440 >/dev/null & \
	p2=$$!; \
	$(BIN)/ddpmd serve -topo torus -dims 8x8 -tcp 127.0.0.1:27440 -http 127.0.0.1:27441 \
		-cluster 127.0.0.1:27440 -peers 127.0.0.1:27420,127.0.0.1:27430 >/dev/null & \
	p3=$$!; \
	trap 'kill $$p1 $$p2 $$p3 2>/dev/null || true' EXIT INT TERM; \
	for port in 27421 27431 27441; do \
		ok=0; for i in $$(seq 1 50); do \
			if $(BIN)/ddpmd status -http 127.0.0.1:$$port >/dev/null 2>&1; then ok=1; break; fi; \
			sleep 0.1; \
		done; \
		[ $$ok -eq 1 ] || { echo "cluster-smoke: instance on $$port never became ready"; exit 1; }; \
	done; \
	$(BIN)/ddpmd loadgen -topo torus -dims 8x8 -zombies 3 \
		-targets 127.0.0.1:27420,127.0.0.1:27430,127.0.0.1:27440; \
	fwd=0; \
	for port in 27421 27431 27441; do \
		out="$$($(BIN)/ddpmd cluster status -http 127.0.0.1:$$port)"; \
		echo "$$out" | grep -q '3/3 alive' || { \
			echo "cluster-smoke: instance on $$port does not see the full fleet:"; \
			echo "$$out"; exit 1; }; \
		n=$$(echo "$$out" | awk '/forwarded out/{print $$3}'); \
		fwd=$$((fwd + n)); \
	done; \
	[ $$fwd -gt 0 ] || { echo "cluster-smoke: no records were forwarded between owners"; exit 1; }; \
	echo "cluster-smoke: fleet healthy, $$fwd records forwarded to their owners"; \
	$(BIN)/ddpmd serve -topo torus -dims 8x8 -tcp 127.0.0.1:27450 -http 127.0.0.1:27451 \
		-cluster 127.0.0.1:27450 -join 127.0.0.1:27420 >/dev/null & \
	p4=$$!; \
	trap 'kill $$p1 $$p2 $$p3 $$p4 2>/dev/null || true' EXIT INT TERM; \
	ok=0; for i in $$(seq 1 50); do \
		if $(BIN)/ddpmd status -http 127.0.0.1:27451 >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	[ $$ok -eq 1 ] || { echo "cluster-smoke: joining instance never became ready"; exit 1; }; \
	for port in 27421 27431 27441 27451; do \
		ok=0; for i in $$(seq 1 50); do \
			if $(BIN)/ddpmd cluster status -http 127.0.0.1:$$port | grep -q '4/4 alive'; then ok=1; break; fi; \
			sleep 0.1; \
		done; \
		[ $$ok -eq 1 ] || { \
			echo "cluster-smoke: instance on $$port never converged on the joined fleet:"; \
			$(BIN)/ddpmd cluster status -http 127.0.0.1:$$port; exit 1; }; \
	done; \
	echo "cluster-smoke: runtime join converged, 4/4 alive on every instance"

## bench: run the engine + pipeline benchmarks and refresh BENCH_netsim.json
bench:
	$(GO) run ./cmd/benchjson -o BENCH_netsim.json
	$(GO) test ./internal/netsim/ -run xxx -bench . -benchmem

## bench-gate: fail if PipelineThroughput regressed >10% vs the
## committed baseline (re-measures on this machine)
bench-gate:
	$(GO) run ./cmd/benchjson -check BENCH_netsim.json -tolerance 0.10

## bench-profile: run the gated pipeline benchmark under the CPU and
## heap profilers; cpu.prof/mem.prof land in the repo root for
## `go tool pprof` (CI uploads them as artifacts)
bench-profile:
	$(GO) test ./cmd/benchjson -run xxx -bench 'BenchmarkPipelineThroughput$$' \
		-benchtime 50x -benchmem -cpuprofile cpu.prof -memprofile mem.prof \
		-o benchjson.test

## fuzz-smoke: short fuzzing passes over the wire codec and DDPM marking
## (go test allows one -fuzz target per invocation)
fuzz-smoke:
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzRecordRoundTrip -fuzztime 5s
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzReader -fuzztime 5s
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzResyncReader -fuzztime 5s
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzTraceContext -fuzztime 5s
	$(GO) test ./internal/marking/ -run xxx -fuzz FuzzDDPMMarkIdentify -fuzztime 5s

## trace-smoke: end-to-end tracing proof on a live daemon — a traced
## loadgen flood must leave at least one tail-sampled block-outcome
## trace retrievable through /debug/traces, saved to trace-dump.json
## for the CI artifact. Boring-trace sampling is cranked to 1-in-2^20
## so whatever the assertion finds got there by tail sampling alone.
trace-smoke: build
	@set -e; \
	$(BIN)/ddpmd serve -topo torus -dims 8x8 -tcp 127.0.0.1:17420 \
		-http 127.0.0.1:17421 -trace-sample 1048576 -trace-buffer 16384 >/dev/null & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT INT TERM; \
	ok=0; for i in $$(seq 1 50); do \
		if $(BIN)/ddpmd status -http 127.0.0.1:17421 >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	[ $$ok -eq 1 ] || { echo "trace-smoke: daemon never became ready"; exit 1; }; \
	$(BIN)/ddpmd loadgen -topo torus -dims 8x8 -zombies 3 -addr 127.0.0.1:17420 -trace; \
	$(BIN)/ddpmd trace -http 127.0.0.1:17421 -outcome block -min 1; \
	$(BIN)/ddpmd trace -http 127.0.0.1:17421 -limit 0 -json -min 1 > trace-dump.json; \
	echo "trace-smoke: saved /debug/traces dump to trace-dump.json"

## fleet-trace-smoke: cross-node tracing proof on a live three-instance
## fleet (DESIGN.md §14) — a traced flood sprayed across every ingress
## must yield at least one blocking record whose stitched timeline (the
## ingress's forwarded span + the owner's block span under one id) is
## retrievable from a member via `ddpmd fleet trace`; the stitched
## document lands in fleet-trace-dump.json for the CI artifact. Boring
## traces are sampled out as in trace-smoke, so both halves of the
## timeline got there by tail sampling alone.
fleet-trace-smoke: build
	@set -e; \
	$(BIN)/ddpmd serve -topo torus -dims 8x8 -tcp 127.0.0.1:37420 -http 127.0.0.1:37421 \
		-cluster 127.0.0.1:37420 -peers 127.0.0.1:37430,127.0.0.1:37440 \
		-trace-sample 1048576 -trace-buffer 65536 >/dev/null & \
	p1=$$!; \
	$(BIN)/ddpmd serve -topo torus -dims 8x8 -tcp 127.0.0.1:37430 -http 127.0.0.1:37431 \
		-cluster 127.0.0.1:37430 -peers 127.0.0.1:37420,127.0.0.1:37440 \
		-trace-sample 1048576 -trace-buffer 65536 >/dev/null & \
	p2=$$!; \
	$(BIN)/ddpmd serve -topo torus -dims 8x8 -tcp 127.0.0.1:37440 -http 127.0.0.1:37441 \
		-cluster 127.0.0.1:37440 -peers 127.0.0.1:37420,127.0.0.1:37430 \
		-trace-sample 1048576 -trace-buffer 65536 >/dev/null & \
	p3=$$!; \
	trap 'kill $$p1 $$p2 $$p3 2>/dev/null || true' EXIT INT TERM; \
	for port in 37421 37431 37441; do \
		ok=0; for i in $$(seq 1 50); do \
			if $(BIN)/ddpmd status -http 127.0.0.1:$$port >/dev/null 2>&1; then ok=1; break; fi; \
			sleep 0.1; \
		done; \
		[ $$ok -eq 1 ] || { echo "fleet-trace-smoke: instance on $$port never became ready"; exit 1; }; \
	done; \
	$(BIN)/ddpmd loadgen -topo torus -dims 8x8 -zombies 8 -trace \
		-targets 127.0.0.1:37420,127.0.0.1:37430,127.0.0.1:37440; \
	stitched=""; \
	for i in $$(seq 1 30); do \
		for port in 37421 37431 37441; do \
			for id in $$($(BIN)/ddpmd trace -http 127.0.0.1:$$port -outcome block 2>/dev/null | awk 'NR>2{print $$1}'); do \
				if $(BIN)/ddpmd fleet trace $$id -http 127.0.0.1:37441 -min 2 >/dev/null 2>&1; then \
					stitched=$$id; break 3; \
				fi; \
			done; \
		done; \
		sleep 0.5; \
	done; \
	[ -n "$$stitched" ] || { echo "fleet-trace-smoke: no blocking record produced a stitched cross-node timeline"; exit 1; }; \
	$(BIN)/ddpmd fleet trace $$stitched -http 127.0.0.1:37421 -min 2; \
	$(BIN)/ddpmd fleet trace $$stitched -http 127.0.0.1:37421 -min 2 -json > fleet-trace-dump.json; \
	echo "fleet-trace-smoke: stitched timeline for $$stitched saved to fleet-trace-dump.json"

## run-ddpmd: start the daemon on an 8x8 torus with the default ports
run-ddpmd:
	$(GO) run ./cmd/ddpmd serve -topo torus -dims 8x8 -tcp :7420 -http :7421

## clean: remove built binaries and local bench/trace artifacts (all
## gitignored; CI uploads them before they would be cleaned)
clean:
	rm -rf $(BIN)
	rm -f benchjson.test cpu.prof mem.prof trace-dump.json fleet-trace-dump.json
