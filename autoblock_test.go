package clusterid

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/rng"
)

func TestMonitorAutoBlockCutsTheFloodMidAttack(t *testing.T) {
	cl, err := New(Config{Topo: Torus2D(8), Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	victim := NodeID(0)
	mon, err := NewMonitor(cl, victim)
	if err != nil {
		t.Fatal(err)
	}
	mon.AutoBlock = 200
	cl.Sim.OnDeliver(mon.Deliver)

	bg := &attack.Background{
		Pattern: attack.Uniform, InjectionRate: 0.002,
		Start: 0, Stop: 12000, R: rng.NewStream(1),
	}
	if err := bg.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
		t.Fatal(err)
	}
	attacker := NodeID(37)
	flood := &attack.Flood{
		Zombies: []attack.Zombie{{
			Node: attacker, Victim: victim,
			Arrival: attack.CBR{Interval: 2},
			Spoof:   attack.RandomSpoof{Plan: cl.Plan, R: rng.NewStream(2)},
		}},
		Start: 3000, Stop: 12000, // 4500 attack packets
		RandomID: rng.NewStream(3),
	}
	if err := flood.Launch(cl.Sim, cl.Plan); err != nil {
		t.Fatal(err)
	}
	cl.Sim.RunAll(1_000_000_000)

	if under, _ := mon.UnderAttack(); !under {
		t.Fatal("flood not detected")
	}
	if mon.Blocklist.Len() == 0 {
		t.Fatal("auto-block never fired")
	}
	// The monitor must have cut the flood long before its end: of the
	// 4500 attack packets, only ~AutoBlock + detection-latency worth
	// were accepted; the rest dropped at the NIC.
	_, dropped := mon.Counts()
	if dropped < 3000 {
		t.Errorf("only %d packets auto-dropped; expected the bulk of the flood", dropped)
	}
	// And the attacker is the one blocked.
	if got := mon.Identifier.Count(attacker); got <= mon.AutoBlock {
		t.Errorf("attacker tally %d never crossed the trigger", got)
	}
}

func TestMonitorAutoBlockStaysQuietWithoutAlarm(t *testing.T) {
	cl, _ := New(Config{Topo: Mesh2D(4), Seed: 5})
	mon, _ := NewMonitor(cl, NodeID(15))
	mon.AutoBlock = 1
	cl.Sim.OnDeliver(mon.Deliver)
	// Benign steady traffic from one peer: plenty of packets but no
	// detector alarm, so nothing may be blocked.
	bg := &attack.Background{
		Pattern: attack.Uniform, InjectionRate: 0.001,
		Start: 0, Stop: 20000, R: rng.NewStream(6),
	}
	if err := bg.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
		t.Fatal(err)
	}
	cl.Sim.RunAll(1_000_000_000)
	if under, _ := mon.UnderAttack(); under {
		t.Skip("detector alarmed on benign traffic in this configuration")
	}
	if mon.Blocklist.Len() != 0 {
		t.Errorf("auto-block fired without an alarm: %d blocked", mon.Blocklist.Len())
	}
}
