package clusterid

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/packet"
	"repro/internal/rng"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	cl, err := New(Config{Topo: Mesh2D(8), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	victim := NodeID(cl.Net.NumNodes() - 1)
	mon, err := NewMonitor(cl, victim)
	if err != nil {
		t.Fatal(err)
	}
	cl.Sim.OnDeliver(mon.Deliver)

	// Warmup background traffic gives the detectors a baseline, then
	// the flood starts at t=2000.
	bg := &attack.Background{
		Pattern: attack.Uniform, InjectionRate: 0.002,
		Start: 0, Stop: 4000, R: rng.NewStream(9),
	}
	if err := bg.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
		t.Fatal(err)
	}
	attacker := NodeID(3)
	flood := &attack.Flood{
		Zombies: []attack.Zombie{{
			Node: attacker, Victim: victim,
			Arrival: attack.CBR{Interval: 2},
			Spoof:   attack.RandomSpoof{Plan: cl.Plan, R: rng.NewStream(1)},
		}},
		Start: 2000, Stop: 4000,
		RandomID: rng.NewStream(2),
	}
	if err := flood.Launch(cl.Sim, cl.Plan); err != nil {
		t.Fatal(err)
	}
	cl.Sim.RunAll(10_000_000)

	srcs := mon.IdentifiedSources(100)
	if len(srcs) != 1 || srcs[0] != attacker {
		t.Fatalf("identified %v, want [%d]", srcs, attacker)
	}
	if under, at := mon.UnderAttack(); !under || at == 0 {
		t.Error("SYN flood not detected")
	}
	acc, drop := mon.Counts()
	if acc == 0 || drop != 0 {
		t.Errorf("counts before blocking = %d/%d", acc, drop)
	}

	// Block and flood again: everything from the attacker drops.
	mon.BlockSources(srcs)
	flood2 := &attack.Flood{
		Zombies: []attack.Zombie{{
			Node: attacker, Victim: victim,
			Arrival: attack.CBR{Interval: 2},
			Spoof:   attack.RandomSpoof{Plan: cl.Plan, R: rng.NewStream(3)},
		}},
		Start: cl.Sim.Now(), Stop: cl.Sim.Now() + 1000,
		RandomID: rng.NewStream(4),
	}
	if err := flood2.Launch(cl.Sim, cl.Plan); err != nil {
		t.Fatal(err)
	}
	accBefore, _ := mon.Counts()
	cl.Sim.RunAll(10_000_000)
	accAfter, dropAfter := mon.Counts()
	if accAfter != accBefore {
		t.Errorf("attack packets accepted after blocking: %d", accAfter-accBefore)
	}
	if dropAfter == 0 {
		t.Error("nothing dropped after blocking")
	}
}

func TestMonitorValidation(t *testing.T) {
	cl, _ := New(Config{Topo: Mesh2D(4), Seed: 1})
	if _, err := NewMonitor(cl, 999); err == nil {
		t.Error("out-of-range victim accepted")
	}
	dpmCl, _ := New(Config{Topo: Mesh2D(4), Scheme: "dpm", Seed: 1})
	if _, err := NewMonitor(dpmCl, 0); err == nil {
		t.Error("monitor on non-DDPM cluster accepted")
	}
}

func TestIdentifySourceHelper(t *testing.T) {
	cl, _ := New(Config{Topo: Mesh2D(4), Seed: 1})
	d, _ := DDPMOf(cl)
	pk := &Packet{}
	d.OnInject(pk)
	d.OnForward(0, 1, pk) // (0,0) -> (0,1)
	src, ok := IdentifySource(cl, 1, pk.Hdr.ID)
	if !ok || src != 0 {
		t.Errorf("IdentifySource = %d, %v", src, ok)
	}
	dpmCl, _ := New(Config{Topo: Mesh2D(4), Scheme: "dpm", Seed: 1})
	if _, ok := IdentifySource(dpmCl, 1, 0); ok {
		t.Error("IdentifySource on non-DDPM cluster succeeded")
	}
}

func TestFacadeEnumerations(t *testing.T) {
	if len(RoutingNames()) < 5 || len(SchemeNames()) < 5 {
		t.Error("enumerations too small")
	}
	rows, err := ScalabilityTable(3)
	if err != nil || len(rows) != 2 {
		t.Errorf("ScalabilityTable: %v, %v", rows, err)
	}
	if E1Analytic(0.04, 20) <= 0 {
		t.Error("E1Analytic non-positive")
	}
}

func TestIngressFilterFacade(t *testing.T) {
	cl, _ := New(Config{Topo: Mesh2D(4), Seed: 1})
	f := NewIngressFilter(cl)
	pk := packet.NewPacket(cl.Plan, 2, 5, packet.ProtoTCPSYN, 0)
	pk.Spoof(cl.Plan.AddrOf(7))
	if got := f.CheckInjection(2, pk); got.String() != "drop" {
		t.Errorf("spoofed injection verdict = %v", got)
	}
}

func TestSYNTableFacade(t *testing.T) {
	st := NewSYNTable(4, 100)
	plan := packet.NewAddrPlan(packet.DefaultBase, 16)
	for i := 0; i < 6; i++ {
		st.Observe(Time(i), packet.NewPacket(plan, NodeID(i), 1, packet.ProtoTCPSYN, 0))
	}
	if !st.Alarmed() {
		t.Error("facade SYN table did not alarm")
	}
}
