package clusterid

import (
	"testing"

	"repro/internal/flitsim"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// BenchmarkE4FlitThroughput is the flit-level half of E4: wormhole
// fabric cycles per delivered packet with DDPM marking on vs off, at a
// moderate uniform load. The marking cost vanishes into the router
// pipeline — the §6.2 expectation.
func BenchmarkE4FlitThroughput(b *testing.B) {
	for _, withMarking := range []bool{false, true} {
		name := "none"
		if withMarking {
			name = "ddpm"
		}
		b.Run(name, func(b *testing.B) {
			var latency float64
			for i := 0; i < b.N; i++ {
				m := topology.NewMesh2D(8)
				plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
				var scheme marking.Scheme
				if withMarking {
					d, err := marking.NewDDPM(m)
					if err != nil {
						b.Fatal(err)
					}
					scheme = d
				}
				f, err := flitsim.New(flitsim.Config{Net: m, Plan: plan, Scheme: scheme, Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				r := rng.NewStream(uint64(i) + 7)
				for cycle := 0; cycle < 500; cycle += 10 {
					for src := 0; src < m.NumNodes(); src++ {
						dst := topology.NodeID(r.Intn(m.NumNodes()))
						if dst == topology.NodeID(src) {
							continue
						}
						f.Inject(packet.NewPacket(plan, topology.NodeID(src), dst, packet.ProtoUDP, 32))
					}
					f.Run(10)
				}
				if !f.RunUntilDrained(1_000_000) {
					b.Fatal("fabric stuck")
				}
				latency += f.Stats().AvgLatency
			}
			b.ReportMetric(latency/float64(b.N), "avg-latency-cycles")
		})
	}
}

// BenchmarkFlitFabricCycles measures raw simulation speed: cycles/sec
// for an 8×8 mesh under sustained load (simulator engineering metric,
// not a paper claim).
func BenchmarkFlitFabricCycles(b *testing.B) {
	m := topology.NewMesh2D(8)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	f, err := flitsim.New(flitsim.Config{Net: m, Plan: plan, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewStream(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%10 == 0 {
			for src := 0; src < m.NumNodes(); src++ {
				dst := topology.NodeID(r.Intn(m.NumNodes()))
				if dst != topology.NodeID(src) {
					f.Inject(packet.NewPacket(plan, topology.NodeID(src), dst, packet.ProtoUDP, 16))
				}
			}
		}
		f.Step()
	}
}

// BenchmarkE1AnalyticGrid sanity-checks the closed form across the grid
// used by cmd/sweep (pure math; exists so the harness covers every E1
// cell cheaply).
func BenchmarkE1AnalyticGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for _, p := range []float64{0.01, 0.04, 0.1, 0.2} {
			for d := 2; d <= 62; d++ {
				sum += E1Analytic(p, d)
			}
		}
		if sum <= 0 {
			b.Fatal("analytic sum non-positive")
		}
	}
}
