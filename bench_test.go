// Benchmark harness: one benchmark per paper table/figure/experiment
// (see DESIGN.md §3 and EXPERIMENTS.md). Run with
//
//	go test -bench=. -benchmem
//
// The E4 micro-benchmarks quantify the paper's §6.2 claim that a switch
// "performs only simple functions such as addition, subtraction, and
// XOR" — compare BenchmarkE4MarkOp* against the no-op baseline.
package clusterid

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// --- Tables 1–3 -------------------------------------------------------

func benchTable(b *testing.B, table int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := core.WriteTable(io.Discard, table); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1SimplePPMScalability(b *testing.B) { benchTable(b, 1) }
func BenchmarkTable2BitDiffScalability(b *testing.B)   { benchTable(b, 2) }
func BenchmarkTable3DDPMScalability(b *testing.B)      { benchTable(b, 3) }

// --- Figure 2 ---------------------------------------------------------

func BenchmarkFigure2RoutingDeliverability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := core.Figure2(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 9 {
			b.Fatalf("cells = %d", len(cells))
		}
	}
}

// --- Figure 3 ---------------------------------------------------------

func BenchmarkFigure3aEdgeSamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure3aTrace(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3bDDPMMeshTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Figure3bTrace(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3cDDPMHypercubeTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Figure3cTrace(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1: PPM convergence ----------------------------------------------

func BenchmarkE1PPMConvergence(b *testing.B) {
	for _, d := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			totalPkts := 0.0
			for i := 0; i < b.N; i++ {
				row, err := core.RunE1(0.04, d, 3, uint64(i)+1, 1_000_000)
				if err != nil {
					b.Fatal(err)
				}
				totalPkts += row.MeanPkts
			}
			b.ReportMetric(totalPkts/float64(b.N), "packets-to-converge")
		})
	}
}

// --- E2: DPM ambiguity --------------------------------------------------

func BenchmarkE2DPMAmbiguity(b *testing.B) {
	for _, r := range []string{"xy", "minimal-adaptive"} {
		b.Run(r, func(b *testing.B) {
			sigs := 0.0
			for i := 0; i < b.N; i++ {
				row, err := core.RunE2(core.Mesh2D(8), r, 10, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				sigs += row.SigsPerFlowMean
			}
			b.ReportMetric(sigs/float64(b.N), "signatures-per-flow")
		})
	}
}

// --- E3: DDPM accuracy ---------------------------------------------------

func BenchmarkE3DDPMAccuracy(b *testing.B) {
	cases := []struct {
		name    string
		spec    core.TopoSpec
		routing string
	}{
		{"mesh8-adaptive", core.Mesh2D(8), "fully-adaptive"},
		{"torus16-adaptive", core.Torus2D(16), "minimal-adaptive"},
		{"cube10-ecube", core.Cube(10), "dor"},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			correct, trials := 0, 0
			for i := 0; i < b.N; i++ {
				row, err := core.RunE3(tc.spec, tc.routing, 100, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				correct += row.Correct
				trials += row.Trials
			}
			b.ReportMetric(float64(correct)/float64(trials), "accuracy")
		})
	}
}

// --- E4: per-hop marking cost (the §6.2 switch overhead) ----------------

func benchMarkOp(b *testing.B, scheme marking.Scheme, net topology.Network) {
	b.Helper()
	r := rng.NewStream(1)
	// Pre-draw a pool of (cur, next) neighbor pairs to keep the
	// benchmark loop free of setup noise.
	type hop struct{ cur, next topology.NodeID }
	pool := make([]hop, 1024)
	for i := range pool {
		cur := topology.NodeID(r.Intn(net.NumNodes()))
		nbs := net.Neighbors(cur)
		pool[i] = hop{cur: cur, next: nbs[r.Intn(len(nbs))]}
	}
	pk := &packet.Packet{}
	pk.Hdr.TTL = packet.DefaultTTL
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := pool[i&1023]
		scheme.OnForward(h.cur, h.next, pk)
	}
}

func BenchmarkE4MarkOpNop(b *testing.B) {
	benchMarkOp(b, marking.Nop{}, topology.NewMesh2D(128))
}

func BenchmarkE4MarkOpDDPMMesh(b *testing.B) {
	m := topology.NewMesh2D(128) // Table 3 max mesh
	d, err := marking.NewDDPM(m)
	if err != nil {
		b.Fatal(err)
	}
	benchMarkOp(b, d, m)
}

func BenchmarkE4MarkOpDDPMTorus(b *testing.B) {
	tr := topology.NewTorus2D(128)
	d, err := marking.NewDDPM(tr)
	if err != nil {
		b.Fatal(err)
	}
	benchMarkOp(b, d, tr)
}

func BenchmarkE4MarkOpDDPMHypercube(b *testing.B) {
	h := topology.NewHypercube(16) // Table 3 max hypercube
	d, err := marking.NewDDPM(h)
	if err != nil {
		b.Fatal(err)
	}
	benchMarkOp(b, d, h)
}

func BenchmarkE4MarkOpDPM(b *testing.B) {
	benchMarkOp(b, marking.NewDPM(), topology.NewMesh2D(128))
}

func BenchmarkE4MarkOpSimplePPM(b *testing.B) {
	m := topology.NewMesh2D(8)
	s, err := marking.NewSimplePPM(m, 0.04, rng.NewStream(2))
	if err != nil {
		b.Fatal(err)
	}
	benchMarkOp(b, s, m)
}

func BenchmarkE4MarkOpFragmentPPM(b *testing.B) {
	f, err := marking.NewFragmentPPM(0.04, rng.NewStream(3))
	if err != nil {
		b.Fatal(err)
	}
	benchMarkOp(b, f, topology.NewMesh2D(128))
}

// BenchmarkE4FabricThroughput measures end-to-end simulation cost with
// marking on vs off: the latency/throughput deltas stay within noise,
// the paper's "we expect they would not affect overall performance".
func BenchmarkE4FabricThroughput(b *testing.B) {
	for _, scheme := range []string{"none", "ddpm"} {
		b.Run(scheme, func(b *testing.B) {
			var latency float64
			for i := 0; i < b.N; i++ {
				cl, err := core.Build(core.Config{
					Topo: core.Mesh2D(8), Scheme: scheme, Seed: uint64(i) + 1, QueueCap: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				bg := &attack.Background{
					Pattern: attack.Uniform, InjectionRate: 0.01,
					Start: 0, Stop: 2000, R: cl.Rng.Stream("bg"),
				}
				if err := bg.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
					b.Fatal(err)
				}
				cl.Sim.RunAll(100_000_000)
				latency += cl.Sim.Stats().AvgLatency()
			}
			b.ReportMetric(latency/float64(b.N), "avg-latency-ticks")
		})
	}
}

// --- E5: end-to-end pipeline --------------------------------------------

func BenchmarkE5EndToEnd(b *testing.B) {
	for _, z := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("zombies=%d", z), func(b *testing.B) {
			blocked := 0.0
			for i := 0; i < b.N; i++ {
				row, err := core.RunE5(core.E5Config{
					Topo: core.Torus2D(8), Zombies: z, Seed: uint64(i) + 1,
					AttackGap: 4, Background: 0.002,
					WarmupTicks: 1000, AttackTicks: 1500, AfterTicks: 1000,
				})
				if err != nil {
					b.Fatal(err)
				}
				blocked += row.BlockedFraction
			}
			b.ReportMetric(blocked/float64(b.N), "blocked-fraction")
		})
	}
}

// --- Ablations (DESIGN.md §6) --------------------------------------------

// BenchmarkAblationCodecAddVsRoundTrip compares the switch's in-place
// field accumulation against the naive decode-add-encode alternative —
// the design decision that keeps per-hop cost at a few instructions.
func BenchmarkAblationCodecAddVsRoundTrip(b *testing.B) {
	codec, err := marking.CodecForDims([]int{128, 128})
	if err != nil {
		b.Fatal(err)
	}
	delta := topology.Vector{1, 0}
	b.Run("in-place-add", func(b *testing.B) {
		mf := uint16(0)
		for i := 0; i < b.N; i++ {
			mf = codec.Add(mf, delta)
		}
		_ = mf
	})
	b.Run("decode-add-encode", func(b *testing.B) {
		mf := uint16(0)
		for i := 0; i < b.N; i++ {
			v := codec.Decode(mf)
			v.AddInPlace(delta)
			nv, err := codec.Encode(v.Wrap([]int{128, 128}))
			if err != nil {
				b.Fatal(err)
			}
			mf = nv
		}
		_ = mf
	})
}

// BenchmarkAblationSelector compares routing selection policies under
// the same adaptive algorithm (DESIGN.md §6.4).
func BenchmarkAblationSelector(b *testing.B) {
	for _, sel := range []string{"first", "random", "congestion"} {
		b.Run(sel, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cl, err := core.Build(core.Config{
					Topo: core.Mesh2D(8), Selector: sel, Seed: uint64(i) + 1, QueueCap: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				bg := &attack.Background{
					Pattern: attack.Transpose, InjectionRate: 0.01,
					Start: 0, Stop: 1000, R: cl.Rng.Stream("bg"),
				}
				if err := bg.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
					b.Fatal(err)
				}
				cl.Sim.RunAll(100_000_000)
			}
		})
	}
}
