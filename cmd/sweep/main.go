// Command sweep runs parameter sweeps over the experiment grid and
// emits CSV for plotting:
//
//	sweep -exp e1 -out e1.csv     # PPM convergence over (p, d)
//	sweep -exp e2                 # DPM ambiguity over mesh sizes
//	sweep -exp e3                 # DDPM accuracy over topologies/routings
//	sweep -exp e5                 # end-to-end over zombie counts
//	sweep -exp load               # fabric latency/throughput vs offered load,
//	                              # marking on vs off (E4's end-to-end half)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/flitsim"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/results"
	"repro/internal/rng"
	"repro/internal/topology"
)

func main() {
	exp := flag.String("exp", "", "experiment: e1, e2, e3, e5, e6, load, flitload")
	out := flag.String("out", "", "output file (default stdout)")
	seed := flag.Uint64("seed", 1, "seed")
	trials := flag.Int("trials", 30, "trials per cell")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	var err error
	switch *exp {
	case "e1":
		err = sweepE1(w, *seed, *trials)
	case "e2":
		err = sweepE2(w, *seed)
	case "e3":
		err = sweepE3(w, *seed, *trials)
	case "e5":
		err = sweepE5(w, *seed)
	case "e6":
		err = sweepE6(w, *seed)
	case "load":
		err = sweepLoad(w, *seed)
	case "flitload":
		err = sweepFlitLoad(w, *seed)
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fatal(err)
	}
}

func sweepE1(w io.Writer, seed uint64, trials int) error {
	fmt.Fprintln(w, "p,d,mean_packets,ci95,analytic")
	for _, p := range []float64{0.01, 0.04, 0.1, 0.2, 0.5} {
		for _, d := range []int{2, 4, 8, 12, 16, 24, 32, 48, 62} {
			if core.E1Analytic(p, d) > 200_000 {
				continue
			}
			row, err := core.RunE1(p, d, trials, seed, 2_000_000)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%.2f,%d,%.1f,%.1f,%.1f\n", row.P, row.D, row.MeanPkts, row.CI95, row.Analytic)
		}
	}
	return nil
}

func sweepE2(w io.Writer, seed uint64) error {
	fmt.Fprintln(w, "topology,routing,diameter,sigs_per_flow,srcs_per_sig,max_srcs_per_sig")
	for _, k := range []int{4, 8, 16, 32} {
		for _, r := range []string{"xy", "minimal-adaptive"} {
			row, err := core.RunE2(core.Mesh2D(k), r, 20, seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s,%s,%d,%.2f,%.2f,%d\n",
				row.Topo, row.Routing, row.Diameter,
				row.SigsPerFlowMean, row.SrcsPerSigMean, row.MaxSrcsPerSig)
		}
	}
	return nil
}

func sweepE3(w io.Writer, seed uint64, trials int) error {
	fmt.Fprintln(w, "topology,routing,trials,accuracy,undecoded")
	specs := []core.TopoSpec{
		core.Mesh2D(4), core.Mesh2D(8), core.Mesh2D(16), core.Mesh2D(64), core.Mesh2D(128),
		core.Torus2D(8), core.Torus2D(16),
		core.Cube(4), core.Cube(8), core.Cube(12),
		core.Mesh(16, 16, 32),
	}
	routings := []string{"dor", "minimal-adaptive", "fully-adaptive"}
	type cell struct {
		spec    core.TopoSpec
		routing string
	}
	var cells []cell
	for _, spec := range specs {
		for _, r := range routings {
			cells = append(cells, cell{spec: spec, routing: r})
		}
	}
	// Cells are independent simulations; fan them across cores and
	// print in deterministic order.
	rows, err := core.RunParallel(len(cells), 0, func(i int) (core.E3Row, error) {
		return core.RunE3(cells[i].spec, cells[i].routing, trials*10, seed)
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%s,%s,%d,%.4f,%d\n", row.Topo, row.Routing, row.Trials, row.Accuracy(), row.Undecoded)
	}
	return nil
}

func sweepE5(w io.Writer, seed uint64) error {
	fmt.Fprintln(w, "zombies,routing,detected,detect_tick,identified_all,false_positives,blocked_fraction")
	for _, r := range []string{"dor", "minimal-adaptive"} {
		for _, z := range []int{1, 2, 4, 8, 16, 32} {
			row, err := core.RunE5(core.E5Config{
				Topo: core.Torus2D(8), Routing: r, Zombies: z, Seed: seed + uint64(z),
				AttackGap: 4, Background: 0.002,
				WarmupTicks: 2000, AttackTicks: 3000, AfterTicks: 2000,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d,%s,%v,%d,%v,%d,%.3f\n",
				row.Zombies, r, row.Detected, row.DetectedAt,
				row.IdentifiedAll, row.FalsePositives, row.BlockedFraction)
		}
	}
	return nil
}

// sweepLoad measures average latency and delivered throughput under
// uniform traffic at increasing offered load, with DDPM marking on and
// off — the end-to-end half of E4 ("we expect they would not affect
// overall performance"): marking is pure header arithmetic, so the two
// curves should coincide.
func sweepLoad(w io.Writer, seed uint64) error {
	fmt.Fprintln(w, "scheme,rate,delivered,dropped,avg_latency,avg_hops")
	for _, scheme := range []string{"none", "ddpm"} {
		for _, rate := range []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05} {
			cl, err := core.Build(core.Config{
				Topo: core.Mesh2D(8), Scheme: scheme, Seed: seed, QueueCap: 64,
			})
			if err != nil {
				return err
			}
			bg := &attack.Background{
				Pattern: attack.Uniform, InjectionRate: rate,
				Start: 0, Stop: 5000, R: cl.Rng.Stream("bg"),
				Proto: packet.ProtoRaw,
			}
			if err := bg.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
				return err
			}
			cl.Sim.RunAll(1_000_000_000)
			st := cl.Sim.Stats()
			_ = eventq.Time(0)
			fmt.Fprintf(w, "%s,%.3f,%d,%d,%.2f,%.2f\n",
				scheme, rate, st.Delivered, st.DroppedTotal(), st.AvgLatency(), st.AvgHops())
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

func sweepE6(w io.Writer, seed uint64) error {
	fmt.Fprintln(w, "topology,routing,fail_fraction,delivery_rate,ddpm_correct_of_delivered")
	for _, spec := range []core.TopoSpec{core.Mesh2D(8), core.Mesh2D(16), core.Torus2D(8)} {
		for _, f := range []float64{0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2} {
			for _, r := range []string{"dor", "minimal-adaptive", "fully-adaptive"} {
				row, err := core.RunE6(spec, r, f, 400, seed)
				if err != nil {
					return err
				}
				correct := 1.0
				if row.Delivered > 0 {
					correct = float64(row.DDPMCorrect) / float64(row.Delivered)
				}
				fmt.Fprintf(w, "%s,%s,%.2f,%.3f,%.3f\n",
					row.Topo, row.Routing, row.FailFraction, row.DeliveryRate(), correct)
			}
		}
	}
	return nil
}

// sweepFlitLoad traces the classic interconnect latency-vs-offered-load
// curve on the flit-level wormhole fabric (8x8 mesh, uniform traffic),
// with DDPM marking on and off. The two curves coincide through
// saturation — the strongest form of the paper's §6.2 claim.
func sweepFlitLoad(w io.Writer, seed uint64) error {
	csv, err := results.NewCSV(w, "scheme", "inject_every_n_cycles", "injected", "delivered", "avg_latency_cycles")
	if err != nil {
		return err
	}
	for _, withMark := range []bool{false, true} {
		name := "none"
		if withMark {
			name = "ddpm"
		}
		for _, gap := range []int{64, 32, 16, 8, 6, 4} {
			m := topology.NewMesh2D(8)
			plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
			var scheme marking.Scheme
			if withMark {
				d, err := marking.NewDDPM(m)
				if err != nil {
					return err
				}
				scheme = d
			}
			f, err := flitsim.New(flitsim.Config{Net: m, Plan: plan, Scheme: scheme, Seed: seed})
			if err != nil {
				return err
			}
			r := rng.NewStream(seed + uint64(gap))
			for cycle := 0; cycle < 3000; cycle += gap {
				for src := 0; src < m.NumNodes(); src++ {
					dst := topology.NodeID(r.Intn(m.NumNodes()))
					if dst == topology.NodeID(src) {
						continue
					}
					f.Inject(packet.NewPacket(plan, topology.NodeID(src), dst, packet.ProtoUDP, 32))
				}
				f.Run(gap)
			}
			if !f.RunUntilDrained(5_000_000) {
				return fmt.Errorf("flit fabric stuck at gap %d", gap)
			}
			st := f.Stats()
			if err := csv.Row(name, gap, st.Injected, st.Delivered, st.AvgLatency); err != nil {
				return err
			}
		}
	}
	return nil
}
