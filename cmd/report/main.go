// Command report regenerates every reproduced artifact in one pass and
// prints a one-page paper-vs-measured verdict sheet — the quickest way
// to audit the reproduction:
//
//	go run ./cmd/report          # ~seconds
//	go run ./cmd/report -trials 30
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/marking"
	"repro/internal/topology"
)

type check struct {
	name    string
	paper   string
	measure func() (string, bool, error)
}

func main() {
	trials := flag.Int("trials", 10, "trials per statistical check")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	checks := []check{
		{
			name:  "Table 1 (simple PPM)",
			paper: "max 8x8 mesh / 2^6 cube",
			measure: func() (string, bool, error) {
				mn, _ := marking.MaxMesh(marking.KindSimplePPM)
				cn, _ := marking.MaxCube(marking.KindSimplePPM)
				return fmt.Sprintf("max %dx%d mesh / 2^%d cube", mn, mn, cn), mn == 8 && cn == 6, nil
			},
		},
		{
			name:  "Table 2 (bit-diff PPM)",
			paper: "max 64x64 mesh / 2^8 cube",
			measure: func() (string, bool, error) {
				mn, _ := marking.MaxMesh(marking.KindBitDiffPPM)
				cn, _ := marking.MaxCube(marking.KindBitDiffPPM)
				// The mesh row is the documented paper inconsistency.
				return fmt.Sprintf("max %dx%d mesh (paper formula caps at 16) / 2^%d cube", mn, mn, cn),
					cn == 8, nil
			},
		},
		{
			name:  "Table 3 (DDPM)",
			paper: "max 128x128 mesh / 2^16 cube / 8192-node 3-D",
			measure: func() (string, bool, error) {
				mn, _ := marking.MaxMesh(marking.KindDDPM)
				cn, _ := marking.MaxCube(marking.KindDDPM)
				_, n3 := marking.Mesh3DDDPMSplit()
				return fmt.Sprintf("max %dx%d mesh / 2^%d cube / %d-node 3-D", mn, mn, cn, n3),
					mn == 128 && cn == 16 && n3 == 8192, nil
			},
		},
		{
			name:  "Figure 2 (routing vs failures)",
			paper: "xy: a only; west-first: a,b; fully-adaptive: a,b,c",
			measure: func() (string, bool, error) {
				cells, err := core.Figure2(*seed)
				if err != nil {
					return "", false, err
				}
				want := map[string]map[string]bool{
					"a": {"xy": true, "west-first": true, "fully-adaptive": true},
					"b": {"xy": false, "west-first": true, "fully-adaptive": true},
					"c": {"xy": false, "west-first": false, "fully-adaptive": true},
				}
				for _, c := range cells {
					w := want[c.Scenario][c.Algorithm]
					if c.S1OK != w || c.S2OK != w {
						return fmt.Sprintf("mismatch at (%s,%s)", c.Scenario, c.Algorithm), false, nil
					}
				}
				return "matrix matches", true, nil
			},
		},
		{
			name:  "Figure 3b (mesh vector trace)",
			paper: "(1,0)(2,0)(2,-1)(1,-1)(1,0)(1,1)(1,2) -> source (1,1)",
			measure: func() (string, bool, error) {
				vecs, src, err := core.Figure3bTrace()
				if err != nil {
					return "", false, err
				}
				ok := len(vecs) == 7 && vecs[6].Equal(topology.Vector{1, 2}) && src.Equal(topology.Coord{1, 1})
				return fmt.Sprintf("final vector %v -> source %v", vecs[len(vecs)-1], src), ok, nil
			},
		},
		{
			name:  "Figure 3c (hypercube trace)",
			paper: "final vector (1,1,0) -> source (1,1,0)",
			measure: func() (string, bool, error) {
				vecs, src, err := core.Figure3cTrace()
				if err != nil {
					return "", false, err
				}
				ok := vecs[len(vecs)-1].Equal(topology.Vector{1, 1, 0}) && src.Equal(topology.Coord{1, 1, 0})
				return fmt.Sprintf("final vector %v -> source %v", vecs[len(vecs)-1], src), ok, nil
			},
		},
		{
			name:  "E1 (PPM cost grows with d)",
			paper: "≈ ln(d)/p(1-p)^(d-1): explodes at cluster diameters",
			measure: func() (string, bool, error) {
				short, err := core.RunE1(0.1, 8, *trials, *seed, 500_000)
				if err != nil {
					return "", false, err
				}
				long, err := core.RunE1(0.1, 32, *trials, *seed, 500_000)
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("d=8: %.0f pkts, d=32: %.0f pkts", short.MeanPkts, long.MeanPkts),
					long.MeanPkts > 3*short.MeanPkts, nil
			},
		},
		{
			name:  "E2 (DPM shatters when adaptive)",
			paper: "1 signature/flow deterministic; many when adaptive",
			measure: func() (string, bool, error) {
				det, err := core.RunE2(core.Mesh2D(8), "xy", 20, *seed)
				if err != nil {
					return "", false, err
				}
				ad, err := core.RunE2(core.Mesh2D(8), "minimal-adaptive", 20, *seed)
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("xy: %.2f sigs/flow, adaptive: %.2f", det.SigsPerFlowMean, ad.SigsPerFlowMean),
					det.SigsPerFlowMean == 1 && ad.SigsPerFlowMean > 3, nil
			},
		},
		{
			name:  "E3 (DDPM single-packet accuracy)",
			paper: "exact source from one packet, any routing",
			measure: func() (string, bool, error) {
				row, err := core.RunE3(core.Mesh2D(8), "fully-adaptive", *trials*20, *seed)
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("%d/%d correct", row.Correct, row.Trials), row.Accuracy() == 1, nil
			},
		},
		{
			name:  "E5 (detect-identify-block pipeline)",
			paper: "spoofed zombies identified and blocked",
			measure: func() (string, bool, error) {
				row, err := core.RunE5(core.E5Config{
					Topo: core.Torus2D(8), Zombies: 4, Seed: *seed,
					AttackGap: 4, Background: 0.002,
					WarmupTicks: 1000, AttackTicks: 1500, AfterTicks: 1000,
				})
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("detected=%v identified=%v fp=%d blocked=%.2f",
						row.Detected, row.IdentifiedAll, row.FalsePositives, row.BlockedFraction),
					row.Detected && row.IdentifiedAll && row.FalsePositives == 0 && row.BlockedFraction > 0.99, nil
			},
		},
		{
			name:  "E6 (fault-tolerance ordering)",
			paper: "fully-adaptive ≥ west-first ≥ xy under failures",
			measure: func() (string, bool, error) {
				xy, err := core.RunE6(core.Mesh2D(8), "xy", 0.1, 300, *seed)
				if err != nil {
					return "", false, err
				}
				fa, err := core.RunE6(core.Mesh2D(8), "fully-adaptive", 0.1, 300, *seed)
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("xy %.2f vs fully-adaptive %.2f; DDPM exact on delivered: %v",
						xy.DeliveryRate(), fa.DeliveryRate(), fa.DDPMCorrect == fa.Delivered),
					fa.DeliveryRate() > xy.DeliveryRate() && fa.DDPMCorrect == fa.Delivered, nil
			},
		},
		{
			name:  "E7 (service denial & recovery)",
			paper: "SYN flood denies; blocking identified source restores",
			measure: func() (string, bool, error) {
				rows, err := core.RunE7(core.E7Config{
					Topo: core.Mesh2D(6), Zombies: 2, TableCap: 16,
					AttackGap: 2, Clients: 40, Seed: *seed + 2, WindowTicks: 4000,
				})
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("completion clean %.2f -> attack %.2f -> blocked %.2f",
						rows[0].CompletionRate(), rows[1].CompletionRate(), rows[2].CompletionRate()),
					rows[1].CompletionRate() < rows[0].CompletionRate() &&
						rows[2].CompletionRate() > rows[1].CompletionRate(), nil
			},
		},
		{
			name:  "X1 (fat-tree stamping, §6.3)",
			paper: "future work: indirect networks",
			measure: func() (string, bool, error) {
				row, err := core.RunX1(4, 6, *trials*20, *seed)
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("%s: %d/%d exact in %d MF bits", row.Tree, row.Correct, row.Trials, row.Bits),
					row.Correct == row.Trials, nil
			},
		},
		{
			name:  "X4 (compromised switch, §4.1)",
			paper: "assumption probed: damage confined to crossing flows",
			measure: func() (string, bool, error) {
				row, err := core.RunX4(core.Mesh2D(8), "ddpm", 27, 400, *seed)
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("%d/%d crossing flows corrupted, 0 clean flows affected: %v",
						row.Misattributed, row.ThroughBad, row.MisattributedClean == 0),
					row.MisattributedClean == 0, nil
			},
		},
	}

	fmt.Println("Reproduction report — Lee, Kim & Lee, \"A Source Identification Scheme")
	fmt.Println("against DDoS Attacks in Cluster Interconnects\" (ICPP Workshops 2004)")
	fmt.Println()
	failures := 0
	for _, c := range checks {
		got, ok, err := c.measure()
		status := "OK  "
		if err != nil {
			status, got = "ERR ", err.Error()
			failures++
		} else if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %-36s paper: %s\n%6smeasured: %s\n", status, c.name, c.paper, "", got)
	}
	fmt.Println()
	if failures > 0 {
		fmt.Printf("%d check(s) failed\n", failures)
		os.Exit(1)
	}
	fmt.Println("all checks passed — see EXPERIMENTS.md for the full numbers")
}
