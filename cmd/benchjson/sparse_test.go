package main

import "testing"

// TestSparseInvariants runs the full sparse-victim workload once and
// lets runSparseOnce's own assertions gate: bounded victim state under
// a 2^20-id destination scan, suppression accounting, identification
// exactness against the offline identifier, zero drops, flat memory.
func TestSparseInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("million-record workload")
	}
	run, err := runSparseOnce()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sparse: %d ingested, %d processed in %v (heap delta %d KB)",
		run.ingested, run.processed, run.elapsed, run.heapDelta>>10)
}
