package main

import "testing"

// BenchmarkPipelineThroughput exposes the gate benchmark to `go test
// -bench` so it can be profiled with the stock -cpuprofile/-memprofile
// flags; `benchjson -check` runs the same function via testing.Benchmark.
func BenchmarkPipelineThroughput(b *testing.B) { benchPipeline(b) }
