package main

import (
	"fmt"
	"testing"
)

// BenchmarkPipelineThroughput exposes the gate benchmark to `go test
// -bench` so it can be profiled with the stock -cpuprofile/-memprofile
// flags; `benchjson -check` runs the same function via testing.Benchmark.
func BenchmarkPipelineThroughput(b *testing.B) { benchPipeline(b) }

// BenchmarkPipelineThroughputBatch sweeps the ingest batch size — the
// same sub-benchmarks benchjson records as PipelineThroughputBatch/N.
func BenchmarkPipelineThroughputBatch(b *testing.B) {
	for _, n := range []int{1, 16, 150, 1024} {
		b.Run(fmt.Sprint(n), benchPipelineBatch(n))
	}
}

// BenchmarkPipelineObservabilityOff is the gate benchmark with stage
// histograms and exemplars disabled (LatencySampleEvery -1). The delta
// against BenchmarkPipelineThroughput is the observability overhead;
// DESIGN.md documents the measured figure (budget: <= 5%).
func BenchmarkPipelineObservabilityOff(b *testing.B) {
	benchPipelineOpts(1024, -1)(b)
}
