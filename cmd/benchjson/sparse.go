package main

// The sparse-victim benchmark: the destination-scan workload the sketch
// admission gate exists for. A 65,536-node hypercube fabric, 8 attacked
// victims with real marked prelude traffic, then a scan touching 2^20
// distinct destination ids exactly once. Without the gate every
// in-fabric scanned id would materialize detectors and identifier
// state; with it, exact state stays bounded by the attacked set while
// identification on the attacked victims remains bit-for-bit equal to
// an offline identifier fed the same records. runSparseOnce asserts all
// of that itself — testing.Benchmark swallows b.Fatal, so correctness
// must not live inside the benchmark loop.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/marking"
	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/traceback"
	"repro/internal/wire"
)

// sparseHeapBudget bounds the pipeline's retained-heap growth across
// the run. The attacked set needs a few MB (detector windows, sketches,
// slab pool); a per-scanned-id state leak needs hundreds.
const sparseHeapBudget = 64 << 20

type sparseRun struct {
	ingested  uint64
	processed uint64
	elapsed   time.Duration
	heapDelta int64
}

// runSparseOnce generates the workload, pushes it through a fresh
// pipeline, and verifies the gate's invariants: bounded victim state,
// exact suppression accounting, zero loss, zero drops, identification
// equality with an offline traceback run, and flat memory.
func runSparseOnce() (*sparseRun, error) {
	net := topology.NewHypercube(16)
	const admit = 8
	gen, err := loadgen.GenerateSparse(loadgen.SparseScenario{
		Net: net, PerVictim: 64, ScanIDs: 1 << 20, Seed: 7,
	})
	if err != nil {
		return nil, err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	p, err := pipeline.New(pipeline.Config{
		Net: net, Shards: 4, QueueLen: 64,
		SketchAdmit:    admit,
		BlockThreshold: 1 << 30, // identification only, no blocking
	})
	if err != nil {
		return nil, err
	}
	const maxOutstanding = 20
	start := time.Now()
	submit := func(recs []wire.Record) {
		for off := 0; off < len(recs); off += wire.SlabCap {
			end := min(off+wire.SlabCap, len(recs))
			for p.SlabsOutstanding() >= maxOutstanding {
				runtime.Gosched()
			}
			s := p.GetSlab()
			for _, rec := range recs[off:end] {
				s.Append(rec)
			}
			p.SubmitSlab(s)
		}
	}
	submit(gen.Prelude)
	submit(gen.Scan)
	p.Close() // drains every shard queue
	run := &sparseRun{
		ingested:  p.C.Ingested.Load(),
		processed: p.C.Processed.Load(),
		elapsed:   time.Since(start),
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	run.heapDelta = int64(after.HeapAlloc) - int64(before.HeapAlloc)

	// Loss accounting: nothing shed, every out-of-fabric scan id
	// rejected at validation, everything else processed.
	if n := p.C.Dropped.Load(); n != 0 {
		return nil, fmt.Errorf("sparse: %d records dropped (pacing broken)", n)
	}
	wantBad := uint64(len(gen.Scan) - gen.InFabricScan)
	if n := p.C.BadVictim.Load(); n != wantBad {
		return nil, fmt.Errorf("sparse: bad-victim rejects = %d, want %d", n, wantBad)
	}
	wantProcessed := uint64(len(gen.Prelude) + gen.InFabricScan)
	if run.processed != wantProcessed {
		return nil, fmt.Errorf("sparse: processed = %d, want %d", run.processed, wantProcessed)
	}

	// The gate: every non-attacked in-fabric id tallied sketch-only,
	// plus each attacked victim's pre-admission records (replayed on
	// admission, so they suppress AND identify).
	wantSuppressed := uint64(gen.InFabricScan + len(gen.Victims)*(admit-1))
	if n := p.C.SketchSuppressed.Load(); n != wantSuppressed {
		return nil, fmt.Errorf("sparse: suppressed = %d, want %d", n, wantSuppressed)
	}
	if n := p.C.SketchReplayed.Load(); n != uint64(len(gen.Victims)*(admit-1)) {
		return nil, fmt.Errorf("sparse: replayed = %d, want %d", n, len(gen.Victims)*(admit-1))
	}
	if n := p.C.VictimsAdmitted.Load(); n != uint64(len(gen.Victims)) {
		return nil, fmt.Errorf("sparse: admitted = %d victims, want %d", n, len(gen.Victims))
	}

	// Bounded state: exact victim state is the attacked set, nothing
	// scanned materialized.
	if n := p.Snapshot().VictimStates; n != len(gen.Victims) {
		return nil, fmt.Errorf("sparse: %d victim states materialized, want %d", n, len(gen.Victims))
	}

	// Exactness: the daemon's per-victim answer equals an offline
	// identifier fed the same prelude — admission lost no evidence.
	scheme, err := marking.NewDDPM(net)
	if err != nil {
		return nil, err
	}
	for _, v := range gen.Victims {
		offline := traceback.NewDDPMIdentifier(scheme, v)
		for _, rec := range gen.Prelude {
			if rec.Victim == v {
				offline.ObserveMF(rec.MF)
			}
		}
		snap, ok := p.ExportVictim(v)
		if !ok {
			return nil, fmt.Errorf("sparse: attacked victim %d has no exact state", v)
		}
		if snap.Undecodable != offline.Undecodable() {
			return nil, fmt.Errorf("sparse: victim %d undecodable = %d, offline %d",
				v, snap.Undecodable, offline.Undecodable())
		}
		var offlineSources int
		offline.EachSource(func(topology.NodeID, int64) { offlineSources++ })
		if len(snap.Sources) != offlineSources {
			return nil, fmt.Errorf("sparse: victim %d has %d sources, offline %d",
				v, len(snap.Sources), offlineSources)
		}
		for _, sc := range snap.Sources {
			if want := offline.Count(topology.NodeID(sc.Node)); sc.Count != want {
				return nil, fmt.Errorf("sparse: victim %d source %d tally = %d, offline %d",
					v, sc.Node, sc.Count, want)
			}
		}
	}

	// Flat memory: retained heap growth stays within the attacked-set
	// budget. The million-record workload is allocated before the first
	// snapshot and kept alive past the second, so it cancels out.
	if run.heapDelta > sparseHeapBudget {
		return nil, fmt.Errorf("sparse: retained heap grew %d MB (budget %d MB)",
			run.heapDelta>>20, int64(sparseHeapBudget)>>20)
	}
	runtime.KeepAlive(p)
	runtime.KeepAlive(gen)
	return run, nil
}

// benchSparseVictims wraps runSparseOnce for testing.Benchmark. Any
// invariant failure lands in *errp — b.Fatal inside testing.Benchmark
// produces an empty result instead of a visible error.
func benchSparseVictims(errp *error) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var ingested uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run, err := runSparseOnce()
			if err != nil {
				*errp = err
				return
			}
			// The scan's validation rejects are real per-record work, so
			// the rate is over everything offered, not just processed.
			ingested += run.ingested
		}
		b.ReportMetric(float64(ingested)/b.Elapsed().Seconds(), "records/sec")
	}
}
