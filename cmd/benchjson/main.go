// Command benchjson runs the netsim engine benchmarks through
// testing.Benchmark and emits machine-readable results as JSON, so
// performance regressions are diffable in review. The checked-in
// snapshot lives at BENCH_netsim.json (refresh with `make bench`).
//
// The workloads mirror internal/netsim/bench_test.go: the headline
// 16×16-torus adaptive-routing benchmark (events/sec), the per-hop
// allocation benchmark (allocs/op must be 0), and the three-topology
// throughput sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/wire"
)

// seedBaseline pins the pre-rewrite engine's numbers on the reference
// machine (Intel Xeon @ 2.10GHz), measured with the identical workload
// before the typed-event/dense-table engine landed. The speedup fields
// in the output are computed against these.
var seedBaseline = map[string]float64{
	"AdaptiveTorus16.events_per_sec": 1481512,
	"ForwardHop.allocs_per_op":       192,
	"ForwardHop.ns_per_op":           8194,
}

// Result is one benchmark's measurements.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Extra holds benchmark-specific metrics (events_per_sec,
	// pkts_per_sec, hops_per_op).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Engine    string             `json:"engine"`
	GoVersion string             `json:"go_version"`
	GOARCH    string             `json:"goarch"`
	NumCPU    int                `json:"num_cpu"`
	Results   []Result           `json:"results"`
	Baseline  map[string]float64 `json:"seed_baseline"`
	Speedup   map[string]float64 `json:"speedup_vs_seed"`
}

func record(name string, br testing.BenchmarkResult, extras ...string) Result {
	r := Result{
		Name:        name,
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}
	for _, key := range extras {
		if v, ok := br.Extra[key]; ok {
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[jsonKey(key)] = v
		}
	}
	return r
}

// jsonKey normalizes testing metric names ("events/sec") to JSON-ish
// snake case ("events_per_sec").
func jsonKey(metric string) string {
	switch metric {
	case "events/sec":
		return "events_per_sec"
	case "pkts/sec":
		return "pkts_per_sec"
	case "hops/op":
		return "hops_per_op"
	case "records/sec":
		return "records_per_sec"
	default:
		return metric
	}
}

// benchAdaptiveTorus16 is the headline benchmark: 16×16 torus,
// minimal-adaptive routing with the congestion selector, DDPM marking,
// 2000 uniform packets per iteration.
func benchAdaptiveTorus16(b *testing.B) {
	tor := topology.NewTorus2D(16)
	d, err := marking.NewDDPM(tor)
	if err != nil {
		b.Fatal(err)
	}
	plan := packet.NewAddrPlan(packet.DefaultBase, tor.NumNodes())
	var fired uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := routing.NewRouter(tor, routing.NewMinimalAdaptive(tor))
		r.Sel = routing.CongestionSelector{R: rng.NewStream(7)}
		n, err := netsim.New(netsim.Config{Net: tor, Router: r, Scheme: d, Plan: plan, QueueCap: 64})
		if err != nil {
			b.Fatal(err)
		}
		stream := rng.NewStream(uint64(i) + 1)
		for k := 0; k < 2000; k++ {
			src := topology.NodeID(stream.Intn(tor.NumNodes()))
			dst := topology.NodeID(stream.Intn(tor.NumNodes()))
			n.InjectAt(eventq.Time(k/8), n.AcquirePacket(src, dst, packet.ProtoUDP, 32))
		}
		n.RunAll(10_000_000)
		fired += n.Q.Fired()
	}
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
}

// benchForwardHop measures steady-state per-hop cost with the packet
// pool: one pooled packet crossing an 8×8 mesh corner to corner
// (14 hops) under XY routing with DDPM. allocs/op must be zero.
func benchForwardHop(b *testing.B) {
	m := topology.NewMesh2D(8)
	d, err := marking.NewDDPM(m)
	if err != nil {
		b.Fatal(err)
	}
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	n, err := netsim.New(netsim.Config{Net: m, Router: r, Scheme: d, Plan: plan, QueueCap: 64})
	if err != nil {
		b.Fatal(err)
	}
	src := m.IndexOf(topology.Coord{0, 0})
	dst := m.IndexOf(topology.Coord{7, 7})
	n.Inject(n.AcquirePacket(src, dst, packet.ProtoUDP, 32))
	n.RunAll(1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Inject(n.AcquirePacket(src, dst, packet.ProtoUDP, 32))
		n.RunAll(1_000_000)
	}
	b.ReportMetric(14, "hops/op")
}

// benchFabric builds the per-topology throughput benchmark: 1000
// uniform packets per iteration, adaptive routing + DDPM.
func benchFabric(net topology.Network) func(b *testing.B) {
	return func(b *testing.B) {
		d, err := marking.NewDDPM(net)
		if err != nil {
			b.Fatal(err)
		}
		plan := packet.NewAddrPlan(packet.DefaultBase, net.NumNodes())
		var delivered uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := routing.NewRouter(net, routing.NewMinimalAdaptive(net))
			r.Sel = routing.CongestionSelector{R: rng.NewStream(7)}
			n, err := netsim.New(netsim.Config{Net: net, Router: r, Scheme: d, Plan: plan, QueueCap: 64})
			if err != nil {
				b.Fatal(err)
			}
			stream := rng.NewStream(uint64(i) + 1)
			for k := 0; k < 1000; k++ {
				src := topology.NodeID(stream.Intn(net.NumNodes()))
				dst := topology.NodeID(stream.Intn(net.NumNodes()))
				n.InjectAt(eventq.Time(k/8), n.AcquirePacket(src, dst, packet.ProtoUDP, 32))
			}
			n.RunAll(10_000_000)
			delivered += n.Stats().Delivered
		}
		b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "pkts/sec")
	}
}

// pipelineBenchRecords pre-generates the pipeline workload: 64k valid
// records spread across 16 victims (exercising the shard fan-out),
// sources cycling over the fabric, each MF the true displacement a
// marked packet would carry.
func pipelineBenchRecords(b *testing.B, net topology.Network) []wire.Record {
	scheme, err := marking.NewDDPM(net)
	if err != nil {
		b.Fatal(err)
	}
	topoID := wire.TopoID(net.Name())
	const nRecs = 1 << 16
	recs := make([]wire.Record, nRecs)
	stream := rng.NewStream(7)
	for i := range recs {
		victim := topology.NodeID(i % 16)
		src := topology.NodeID(stream.Intn(net.NumNodes()))
		sc, dc := net.CoordOf(src), net.CoordOf(victim)
		v := make(topology.Vector, len(sc))
		for j := range v {
			v[j] = dc[j] - sc[j]
		}
		mf, err := scheme.Codec().Encode(v)
		if err != nil {
			b.Fatal(err)
		}
		recs[i] = wire.Record{
			T: eventq.Time(i), Topo: topoID, Victim: victim,
			MF: mf, Src: packet.Addr(i), Proto: packet.ProtoTCPSYN,
		}
	}
	return recs
}

// benchPipelineBatch measures ddpmd's streaming pipeline at one ingest
// batch size: records are appended to pooled slabs batchSize at a time
// and pushed through SubmitSlab. The metric is sustained steady-state
// records/sec end to end — DDPM identification plus detector updates —
// against one long-lived pipeline, the way the daemon actually runs.
// Each iteration replays the workload one window-epoch later so the
// detectors keep rolling forward instead of replaying time. Submission
// is paced by SlabsOutstanding so the slab pool recycles (a real
// exporter gets the same pacing from the socket); batchSize 1 is the
// single-record Submit discipline, 1024 the exporter client default.
func benchPipelineBatch(batchSize int) func(b *testing.B) {
	return benchPipelineOpts(batchSize, 0)
}

// benchPipelineOpts additionally exposes the stage-latency sampling
// knob so the observability overhead is measurable: sampleEvery 0 is
// the production default (1 in 64), -1 disables stage histograms and
// exemplars entirely. Compare BenchmarkPipelineThroughput against
// BenchmarkPipelineObservabilityOff to quantify the cost.
func benchPipelineOpts(batchSize, sampleEvery int) func(b *testing.B) {
	return func(b *testing.B) {
		net := topology.NewTorus2D(8)
		recs := pipelineBenchRecords(b, net)
		p, err := pipeline.New(pipeline.Config{
			Net: net, Shards: 4, QueueLen: 64,
			LatencySampleEvery: sampleEvery,
		})
		if err != nil {
			b.Fatal(err)
		}
		const maxOutstanding = 20 // under the pool size, so slabs recycle
		var epoch eventq.Time
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(recs); off += batchSize {
				end := off + batchSize
				if end > len(recs) {
					end = len(recs)
				}
				for p.SlabsOutstanding() >= maxOutstanding {
					runtime.Gosched()
				}
				s := p.GetSlab()
				for _, rec := range recs[off:end] {
					rec.T += epoch
					s.Append(rec)
				}
				p.SubmitSlab(s)
			}
			epoch += 1 << 16
		}
		b.StopTimer()
		p.Close()
		if p.C.Dropped.Load() != 0 {
			b.Fatalf("benchmark pacing broken: %d dropped", p.C.Dropped.Load())
		}
		b.ReportMetric(float64(p.C.Processed.Load())/b.Elapsed().Seconds(), "records/sec")
	}
}

// benchPipeline is the headline (and CI-gated) pipeline benchmark:
// batch ingest at the exporter client's default frame size.
var benchPipeline = benchPipelineBatch(1024)

// checkPipeline is the CI regression gate: rerun PipelineThroughput
// and compare records/sec against the committed baseline file, failing
// when the measured rate falls more than tolerance below it. Only the
// pipeline bench gates — the fabric benches are too machine-sensitive
// to compare across CI runners without a stored reference host.
func checkPipeline(baselinePath string, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	want := 0.0
	for _, r := range base.Results {
		if r.Name == "PipelineThroughput" {
			want = r.Extra["records_per_sec"]
		}
	}
	if want <= 0 {
		return fmt.Errorf("%s has no PipelineThroughput records_per_sec", baselinePath)
	}
	fmt.Fprintln(os.Stderr, "benchjson: running PipelineThroughput ...")
	got := testing.Benchmark(benchPipeline).Extra["records/sec"]
	ratio := got / want
	fmt.Fprintf(os.Stderr, "benchjson: PipelineThroughput %.0f records/sec vs baseline %.0f (%.1f%%)\n",
		got, want, 100*ratio)
	if ratio < 1-tolerance {
		return fmt.Errorf("PipelineThroughput regressed %.1f%% (tolerance %.0f%%): %.0f < %.0f records/sec",
			100*(1-ratio), 100*tolerance, got, want)
	}
	// The sparse-victim run gates on its invariants (bounded state,
	// exactness, flat memory), not on rate — those break functionally,
	// not by degrees.
	fmt.Fprintln(os.Stderr, "benchjson: running PipelineSparseVictims invariants ...")
	run, err := runSparseOnce()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: PipelineSparseVictims %.0f records/sec, heap delta %d KB\n",
		float64(run.ingested)/run.elapsed.Seconds(), run.heapDelta>>10)
	return nil
}

func main() {
	out := flag.String("o", "BENCH_netsim.json", "output path ('-' for stdout)")
	check := flag.String("check", "", "regression-gate mode: compare PipelineThroughput against this baseline JSON and exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional PipelineThroughput regression in -check mode")
	flag.Parse()

	if *check != "" {
		if err := checkPipeline(*check, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	rep := Report{
		Engine:    "typed-event freelist kernel, dense link tables, packet pool",
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Baseline:  seedBaseline,
		Speedup:   map[string]float64{},
	}

	fmt.Fprintln(os.Stderr, "benchjson: running AdaptiveTorus16 ...")
	torus := testing.Benchmark(benchAdaptiveTorus16)
	rep.Results = append(rep.Results, record("AdaptiveTorus16", torus, "events/sec"))

	fmt.Fprintln(os.Stderr, "benchjson: running ForwardHop ...")
	hop := testing.Benchmark(benchForwardHop)
	rep.Results = append(rep.Results, record("ForwardHop", hop, "hops/op"))

	sweeps := []struct {
		name string
		net  topology.Network
	}{
		{"FabricThroughput/mesh16x16", topology.NewMesh2D(16)},
		{"FabricThroughput/torus16x16", topology.NewTorus2D(16)},
		{"FabricThroughput/hypercube8", topology.NewHypercube(8)},
	}
	for _, s := range sweeps {
		fmt.Fprintln(os.Stderr, "benchjson: running", s.name, "...")
		br := testing.Benchmark(benchFabric(s.net))
		rep.Results = append(rep.Results, record(s.name, br, "pkts/sec"))
	}

	fmt.Fprintln(os.Stderr, "benchjson: running PipelineThroughput ...")
	pt := testing.Benchmark(benchPipeline)
	rep.Results = append(rep.Results, record("PipelineThroughput", pt, "records/sec"))

	fmt.Fprintln(os.Stderr, "benchjson: running PipelineSparseVictims ...")
	var sparseErr error
	sv := testing.Benchmark(benchSparseVictims(&sparseErr))
	if sparseErr != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", sparseErr)
		os.Exit(1)
	}
	rep.Results = append(rep.Results, record("PipelineSparseVictims", sv, "records/sec"))

	// Ingest batch-size sweep: 1 (per-record Submit discipline), 16
	// (small UDP datagrams), 150 (traced sealed frames), 1024 (exporter
	// client default).
	for _, n := range []int{1, 16, 150, 1024} {
		name := fmt.Sprintf("PipelineThroughputBatch/%d", n)
		fmt.Fprintln(os.Stderr, "benchjson: running", name, "...")
		br := testing.Benchmark(benchPipelineBatch(n))
		rep.Results = append(rep.Results, record(name, br, "records/sec"))
	}

	if eps := rep.Results[0].Extra["events_per_sec"]; eps > 0 {
		rep.Speedup["AdaptiveTorus16.events_per_sec"] = eps / seedBaseline["AdaptiveTorus16.events_per_sec"]
	}
	rep.Speedup["ForwardHop.ns_per_op"] = seedBaseline["ForwardHop.ns_per_op"] / rep.Results[1].NsPerOp

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchjson: wrote", *out)
}
