// Command tables regenerates the paper's scalability tables (Tables
// 1–3): the marking-field bits each scheme needs per topology family
// and the largest cluster that fits the 16-bit IP Identification field.
//
//	tables            # all three tables
//	tables -table 3   # one table
//	tables -sweep     # per-size bit requirements (CSV)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/marking"
)

func main() {
	table := flag.Int("table", 0, "table number (1, 2 or 3); 0 prints all")
	sweep := flag.Bool("sweep", false, "emit the per-size bit-requirement sweep as CSV")
	flag.Parse()

	if *sweep {
		emitSweep()
		return
	}
	tables := []int{1, 2, 3}
	if *table != 0 {
		tables = []int{*table}
	}
	for i, tnum := range tables {
		if i > 0 {
			fmt.Println()
		}
		if err := core.WriteTable(os.Stdout, tnum); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func emitSweep() {
	fmt.Println("family,n,scheme,bits,fits16")
	kinds := []marking.SchemeKind{marking.KindSimplePPM, marking.KindBitDiffPPM, marking.KindDDPM}
	for n := 2; n <= 512; n <<= 1 {
		for _, k := range kinds {
			bits := marking.MeshBits(k, n)
			fmt.Printf("mesh,%d,%s,%d,%v\n", n, k, bits, bits <= marking.MFBits)
		}
	}
	for n := 1; n <= 20; n++ {
		for _, k := range kinds {
			bits := marking.CubeBits(k, n)
			fmt.Printf("hypercube,%d,%s,%d,%v\n", n, k, bits, bits <= marking.MFBits)
		}
	}
}
