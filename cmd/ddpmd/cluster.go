package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"
)

// runCluster dispatches the cluster subcommands (just `status` today).
func runCluster(args []string) {
	if len(args) < 1 || args[0] != "status" {
		fmt.Fprintln(os.Stderr, "usage: ddpmd cluster status [-http addr]")
		os.Exit(2)
	}
	runClusterStatus(args[1:])
}

// runClusterStatus renders one instance's /cluster document: ring
// generation, fleet liveness as this instance sees it, and the
// forwarding/gossip counters.
func runClusterStatus(args []string) {
	fs := flag.NewFlagSet("ddpmd cluster status", flag.ExitOnError)
	var (
		httpAddr = fs.String("http", "127.0.0.1:7421", "admin plane address of the daemon")
		timeout  = fs.Duration("timeout", 5*time.Second, "HTTP timeout")
	)
	fs.Parse(args)

	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(fmt.Sprintf("http://%s/cluster", *httpAddr))
	if err != nil {
		fatal(fmt.Errorf("cluster status: %w", err))
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(fmt.Errorf("cluster status: %w", err))
	}
	if resp.StatusCode == http.StatusNotFound {
		fmt.Printf("ddpmd at %s: cluster mode off\n", *httpAddr)
		return
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("cluster status: GET /cluster: %d %s", resp.StatusCode, strings.TrimSpace(string(body))))
	}
	var st struct {
		Self        string `json:"self"`
		MemberID    uint64 `json:"member_id"`
		Incarnation uint64 `json:"incarnation"`
		RingVersion uint64 `json:"ring_version"`
		Alive       int    `json:"alive"`
		Members     []struct {
			Addr         string `json:"addr"`
			ID           uint64 `json:"id"`
			Self         bool   `json:"self"`
			Alive        bool   `json:"alive"`
			LastHeardMs  int64  `json:"last_heard_ms"`
			RingVersion  uint64 `json:"ring_version"`
			Delivered    uint64 `json:"forward_delivered"`
			Queued       uint64 `json:"forward_queued"`
			Lost         uint64 `json:"forward_lost"`
			LastGossipMs int64  `json:"last_gossip_ms"`
			AdminAddr    string `json:"admin_addr"`
		} `json:"members"`
		ForwardedOut   uint64 `json:"forwarded_out"`
		ForwardedIn    uint64 `json:"forwarded_in"`
		ForwardDropped uint64 `json:"forward_dropped"`
		ForwardLost    uint64 `json:"forward_lost"`
		ForwardQueue   int    `json:"forward_queue_len"`
		GossipRounds   uint64 `json:"gossip_rounds"`
		GossipFails    uint64 `json:"gossip_fails"`
		BlocklistSeq   uint64 `json:"blocklist_seq"`
		SeedsApplied   uint64 `json:"seeds_applied"`
		Takeovers      uint64 `json:"takeovers"`
		StoredReplicas int    `json:"stored_replicas"`
		OwnedVictims   int    `json:"owned_victims"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		fatal(fmt.Errorf("cluster status: bad /cluster response: %w", err))
	}

	fmt.Printf("ddpmd cluster at %s — self %s (member %x), ring v%d, %d/%d alive\n",
		*httpAddr, st.Self, st.MemberID, st.RingVersion, st.Alive, len(st.Members))
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  member\taddr\talive\tlast heard\tlast gossip\tring\tfwd queued\tdelivered\tlost")
	for _, m := range st.Members {
		who := fmt.Sprintf("%x", m.ID)
		if m.Self {
			who += " (self)"
		}
		heard, gossip := "-", "-"
		if !m.Self {
			heard = fmt.Sprintf("%dms ago", m.LastHeardMs)
			switch {
			case m.LastGossipMs < 0:
				gossip = "never"
			default:
				gossip = fmt.Sprintf("%dms ago", m.LastGossipMs)
			}
		}
		fmt.Fprintf(tw, "  %s\t%s\t%v\t%s\t%s\tv%d\t%d\t%d\t%d\n",
			who, m.Addr, m.Alive, heard, gossip, m.RingVersion, m.Queued, m.Delivered, m.Lost)
	}
	tw.Flush()
	fmt.Println()
	tw = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  forwarded out\t%d\n", st.ForwardedOut)
	fmt.Fprintf(tw, "  forwarded in\t%d\n", st.ForwardedIn)
	fmt.Fprintf(tw, "  forward dropped\t%d\n", st.ForwardDropped)
	fmt.Fprintf(tw, "  forward lost\t%d\n", st.ForwardLost)
	fmt.Fprintf(tw, "  forward queue\t%d\n", st.ForwardQueue)
	fmt.Fprintf(tw, "  gossip rounds\t%d (%d failed exchanges)\n", st.GossipRounds, st.GossipFails)
	fmt.Fprintf(tw, "  blocklist seq\t%d\n", st.BlocklistSeq)
	fmt.Fprintf(tw, "  owned victims\t%d (replicas stored %d, seeds applied %d, takeovers %d)\n",
		st.OwnedVictims, st.StoredReplicas, st.SeedsApplied, st.Takeovers)
	tw.Flush()
}
