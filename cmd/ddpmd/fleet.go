package main

// ddpmd fleet — fleet-wide observability commands. Each starts from a
// single member's admin plane: `fleet trace` asks that member's
// /cluster/traces endpoint to fan the query out (the daemon knows the
// roster and its admin addresses via gossip), while `fleet status` and
// `fleet victims` discover the roster from /cluster themselves and
// aggregate per-member answers client-side.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

func runFleet(args []string) {
	if len(args) < 1 {
		fleetUsage()
	}
	switch args[0] {
	case "trace":
		runFleetTrace(args[1:])
	case "status":
		runFleetStatus(args[1:])
	case "victims":
		runFleetVictims(args[1:])
	default:
		fleetUsage()
	}
}

func fleetUsage() {
	fmt.Fprintln(os.Stderr, "usage: ddpmd fleet trace <id> | status | victims [-http addr]")
	os.Exit(2)
}

// fleetSpan mirrors pipeline.FleetSpan: one member's retained trace,
// tagged with the node that holds it.
type fleetSpan struct {
	Node     string `json:"node"`
	MemberID string `json:"member_id"`
	traceEntry
}

// fleetTraceDoc mirrors pipeline.FleetTrace, the merged /cluster/traces
// document.
type fleetTraceDoc struct {
	ID                 string      `json:"id"`
	Spans              []fleetSpan `json:"spans"`
	Errors             []string    `json:"errors"`
	DetectionLatencyNS int64       `json:"detection_latency_ns"`
}

// runFleetTrace renders one record's cross-node timeline: every span
// any alive member retained under the id, merged and ordered by start
// time, with the end-to-end send-to-block latency when the timeline
// ends in a block decision.
func runFleetTrace(args []string) {
	// Accept the id as the leading positional argument (`fleet trace
	// <id> -http ...`) since flag parsing stops at the first non-flag.
	var idArg string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		idArg, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("ddpmd fleet trace", flag.ExitOnError)
	var (
		httpAddr = fs.String("http", "127.0.0.1:7421", "admin plane address of any fleet member")
		id       = fs.String("id", "", "trace id in hex (or pass it as the first argument)")
		minSpans = fs.Int("min", 0, "exit nonzero unless at least this many spans merged")
		timeout  = fs.Duration("timeout", 10*time.Second, "HTTP timeout (covers the member fan-out)")
		jsonOut  = fs.Bool("json", false, "emit the raw /cluster/traces JSON instead of the table")
	)
	fs.Parse(args)
	if idArg != "" {
		*id = idArg
	}
	if *id == "" {
		fatal(fmt.Errorf("fleet trace: a trace id is required (hex, e.g. off a /metrics exemplar)"))
	}

	client := &http.Client{Timeout: *timeout}
	body, status, err := fleetGet(client, *httpAddr, "/cluster/traces?id="+*id)
	if err != nil {
		fatal(fmt.Errorf("fleet trace: %w", err))
	}
	if status != http.StatusOK {
		fatal(fmt.Errorf("fleet trace: GET /cluster/traces: %d: %s", status, strings.TrimSpace(string(body))))
	}
	var doc fleetTraceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		fatal(fmt.Errorf("fleet trace: bad /cluster/traces response: %w", err))
	}

	if *jsonOut {
		os.Stdout.Write(body)
	} else {
		nodes := map[string]bool{}
		for _, s := range doc.Spans {
			nodes[s.Node] = true
		}
		fmt.Printf("trace %s — %d spans across %d nodes\n", doc.ID, len(doc.Spans), len(nodes))
		if doc.DetectionLatencyNS > 0 {
			fmt.Printf("detection latency %s (exporter send → block decision)\n",
				fmtSpan(doc.DetectionLatencyNS))
		}
		if len(doc.Spans) > 0 {
			tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "  node\tmember\toutcome\tvictim\tsource\tshard\twire\tforward\tingest\tidentify\tdetect\tblock\ttotal")
			for _, s := range doc.Spans {
				fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
					s.Node, s.MemberID, s.Outcome, fmtNode(s.Victim), fmtNode(s.Source), fmtNode(int64(s.Shard)),
					fmtSpan(s.WireNS), fmtSpan(s.ForwardNS), fmtSpan(s.IngestNS), fmtSpan(s.IdentifyNS),
					fmtSpan(s.DetectNS), fmtSpan(s.BlockNS), fmtSpan(s.TotalNS))
			}
			tw.Flush()
		}
	}
	for _, e := range doc.Errors {
		fmt.Fprintf(os.Stderr, "fleet trace: %s\n", e)
	}
	if len(doc.Spans) < *minSpans {
		fmt.Fprintf(os.Stderr, "fleet trace: %d spans merged, wanted at least %d\n", len(doc.Spans), *minSpans)
		os.Exit(1)
	}
}

// fleetRoster fetches one member's /cluster document and returns the
// fleet roster as that member sees it: (addr, member id hex, alive,
// admin address) per member, self included.
type fleetRosterEntry struct {
	Addr      string
	ID        uint64
	Self      bool
	Alive     bool
	AdminAddr string
}

func fleetRoster(client *http.Client, httpAddr string) []fleetRosterEntry {
	body, status, err := fleetGet(client, httpAddr, "/cluster")
	if err != nil {
		fatal(fmt.Errorf("fleet: %w", err))
	}
	if status == http.StatusNotFound {
		fatal(fmt.Errorf("fleet: ddpmd at %s is not in cluster mode", httpAddr))
	}
	if status != http.StatusOK {
		fatal(fmt.Errorf("fleet: GET /cluster: %d: %s", status, strings.TrimSpace(string(body))))
	}
	var doc struct {
		Members []struct {
			Addr      string `json:"addr"`
			ID        uint64 `json:"id"`
			Self      bool   `json:"self"`
			Alive     bool   `json:"alive"`
			AdminAddr string `json:"admin_addr"`
		} `json:"members"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		fatal(fmt.Errorf("fleet: bad /cluster response: %w", err))
	}
	out := make([]fleetRosterEntry, 0, len(doc.Members))
	for _, m := range doc.Members {
		e := fleetRosterEntry(m)
		if m.Self {
			// The queried member always answers on the address we used,
			// even before its own gossip round advertised it.
			if e.AdminAddr == "" {
				e.AdminAddr = httpAddr
			}
			e.Alive = true
		}
		out = append(out, e)
	}
	return out
}

// runFleetStatus aggregates every member's own /cluster document into
// one per-member table: each row is a member's view of itself.
func runFleetStatus(args []string) {
	fs := flag.NewFlagSet("ddpmd fleet status", flag.ExitOnError)
	var (
		httpAddr = fs.String("http", "127.0.0.1:7421", "admin plane address of any fleet member")
		timeout  = fs.Duration("timeout", 5*time.Second, "HTTP timeout per member")
	)
	fs.Parse(args)

	client := &http.Client{Timeout: *timeout}
	roster := fleetRoster(client, *httpAddr)
	fmt.Printf("fleet of %d members (roster from %s)\n", len(roster), *httpAddr)
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  member\taddr\tadmin\talive\tring\towned victims\tfwd out\tfwd in\tblocklist seq\tnote")
	for _, m := range roster {
		row := func(ring, owned, fwdOut, fwdIn, blSeq, note string) {
			fmt.Fprintf(tw, "  %x\t%s\t%s\t%v\t%s\t%s\t%s\t%s\t%s\t%s\n",
				m.ID, m.Addr, m.AdminAddr, m.Alive, ring, owned, fwdOut, fwdIn, blSeq, note)
		}
		if m.AdminAddr == "" {
			row("-", "-", "-", "-", "-", "admin address not yet gossiped")
			continue
		}
		body, status, err := fleetGet(client, m.AdminAddr, "/cluster")
		if err != nil {
			row("-", "-", "-", "-", "-", err.Error())
			continue
		}
		if status != http.StatusOK {
			row("-", "-", "-", "-", "-", fmt.Sprintf("GET /cluster: %d", status))
			continue
		}
		var doc struct {
			RingVersion  uint64 `json:"ring_version"`
			OwnedVictims int    `json:"owned_victims"`
			ForwardedOut uint64 `json:"forwarded_out"`
			ForwardedIn  uint64 `json:"forwarded_in"`
			BlocklistSeq uint64 `json:"blocklist_seq"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			row("-", "-", "-", "-", "-", fmt.Sprintf("bad /cluster response: %v", err))
			continue
		}
		row(fmt.Sprintf("v%d", doc.RingVersion), fmt.Sprint(doc.OwnedVictims),
			fmt.Sprint(doc.ForwardedOut), fmt.Sprint(doc.ForwardedIn), fmt.Sprint(doc.BlocklistSeq), "")
	}
	tw.Flush()
}

// runFleetVictims merges every member's /victims report into one
// fleet-wide view. A victim appears once even when ownership moved
// mid-attack: tallies sum across the members that held state for it.
func runFleetVictims(args []string) {
	fs := flag.NewFlagSet("ddpmd fleet victims", flag.ExitOnError)
	var (
		httpAddr = fs.String("http", "127.0.0.1:7421", "admin plane address of any fleet member")
		topK     = fs.Int("k", 5, "top sources per victim")
		timeout  = fs.Duration("timeout", 5*time.Second, "HTTP timeout per member")
	)
	fs.Parse(args)

	type victimRow struct {
		Node        int64
		Alarmed     bool
		Identified  int64
		Undecodable int64
		Sources     map[int64]int64
		ReportedBy  []string
	}
	client := &http.Client{Timeout: *timeout}
	roster := fleetRoster(client, *httpAddr)
	merged := map[int64]*victimRow{}
	for _, m := range roster {
		if m.AdminAddr == "" || !m.Alive {
			continue
		}
		body, status, err := fleetGet(client, m.AdminAddr, fmt.Sprintf("/victims?k=%d", *topK))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet victims: %s: %v\n", m.Addr, err)
			continue
		}
		if status != http.StatusOK {
			fmt.Fprintf(os.Stderr, "fleet victims: %s: GET /victims: %d\n", m.Addr, status)
			continue
		}
		var reports []struct {
			Node        int64 `json:"node"`
			Alarmed     bool  `json:"alarmed"`
			Identified  int64 `json:"identified"`
			Undecodable int64 `json:"undecodable"`
			TopSources  []struct {
				Node  int64 `json:"node"`
				Count int64 `json:"count"`
			} `json:"top_sources"`
		}
		if err := json.Unmarshal(body, &reports); err != nil {
			fmt.Fprintf(os.Stderr, "fleet victims: %s: bad /victims response: %v\n", m.Addr, err)
			continue
		}
		mid := fmt.Sprintf("%x", m.ID)
		for _, r := range reports {
			row := merged[r.Node]
			if row == nil {
				row = &victimRow{Node: r.Node, Sources: map[int64]int64{}}
				merged[r.Node] = row
			}
			row.Alarmed = row.Alarmed || r.Alarmed
			row.Identified += r.Identified
			row.Undecodable += r.Undecodable
			for _, s := range r.TopSources {
				row.Sources[s.Node] += s.Count
			}
			row.ReportedBy = append(row.ReportedBy, mid)
		}
	}

	rows := make([]*victimRow, 0, len(merged))
	for _, r := range merged {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Identified != rows[j].Identified {
			return rows[i].Identified > rows[j].Identified
		}
		return rows[i].Node < rows[j].Node
	})
	fmt.Printf("%d victims with materialized state across the fleet\n", len(rows))
	if len(rows) == 0 {
		return
	}
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  victim\talarmed\tidentified\tundecodable\ttop sources\treported by")
	for _, r := range rows {
		type sc struct {
			node, count int64
		}
		srcs := make([]sc, 0, len(r.Sources))
		for n, c := range r.Sources {
			srcs = append(srcs, sc{n, c})
		}
		sort.Slice(srcs, func(i, j int) bool {
			if srcs[i].count != srcs[j].count {
				return srcs[i].count > srcs[j].count
			}
			return srcs[i].node < srcs[j].node
		})
		if len(srcs) > *topK {
			srcs = srcs[:*topK]
		}
		parts := make([]string, len(srcs))
		for i, s := range srcs {
			parts[i] = fmt.Sprintf("%d(%d)", s.node, s.count)
		}
		top := strings.Join(parts, " ")
		if top == "" {
			top = "-"
		}
		fmt.Fprintf(tw, "  %d\t%v\t%d\t%d\t%s\t%s\n",
			r.Node, r.Alarmed, r.Identified, r.Undecodable, top, strings.Join(r.ReportedBy, " "))
	}
	tw.Flush()
}

// fleetGet fetches one admin-plane path and returns the body and
// status; transport errors come back as the error.
func fleetGet(client *http.Client, addr, path string) ([]byte, int, error) {
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}
