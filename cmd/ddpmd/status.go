package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// runStatus renders a running daemon's admin plane as a human-readable
// report: health, the headline counters from /metrics, per-stage
// latency quantiles, and the per-victim view from /victims.
func runStatus(args []string) {
	fs := flag.NewFlagSet("ddpmd status", flag.ExitOnError)
	var (
		httpAddr = fs.String("http", "127.0.0.1:7421", "admin plane address of the daemon")
		topK     = fs.Int("k", 5, "top identified sources listed per victim")
		timeout  = fs.Duration("timeout", 5*time.Second, "HTTP timeout")
	)
	fs.Parse(args)

	client := &http.Client{Timeout: *timeout}
	get := func(path string) (int, []byte, error) {
		resp, err := client.Get(fmt.Sprintf("http://%s%s", *httpAddr, path))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}

	code, health, err := get("/healthz")
	if err != nil {
		fatal(fmt.Errorf("status: %w", err))
	}
	code2, metricsBody, err := get("/metrics")
	if err != nil || code2 != http.StatusOK {
		fatal(fmt.Errorf("status: GET /metrics: %d %v", code2, err))
	}
	m := parseMetrics(metricsBody)

	fmt.Printf("ddpmd at %s — %s", *httpAddr, strings.TrimSpace(string(health)))
	if code != http.StatusOK {
		fmt.Printf(" (HTTP %d)", code)
	}
	if up, ok := m.value("ddpmd_uptime_seconds", nil); ok {
		fmt.Printf(", up %s", (time.Duration(up) * time.Second).String())
	}
	fmt.Println()
	for _, s := range m.series["ddpmd_topology_info"] {
		fmt.Printf("fabric %s (topo id %s)\n", s.labels["topology"], s.labels["topo_id"])
	}
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	row := func(label, name string) {
		if v, ok := m.value(name, nil); ok {
			fmt.Fprintf(tw, "  %s\t%.0f\n", label, v)
		}
	}
	fmt.Println("pipeline:")
	row("ingested", "ddpmd_ingested_total")
	row("accepted", "ddpmd_accepted_total")
	row("processed", "ddpmd_processed_total")
	row("identified", "ddpmd_identified_total")
	row("undecodable", "ddpmd_undecodable_total")
	row("dropped (backpressure)", "ddpmd_dropped_total")
	row("blocked hits", "ddpmd_blocked_hits_total")
	row("alarms", "ddpmd_alarms_total")
	row("blocks", "ddpmd_blocks_total")
	row("active blocks", "ddpmd_active_blocks")
	if v, ok := m.value("ddpmd_ingest_rate", nil); ok {
		fmt.Fprintf(tw, "  ingest rate\t%.1f rec/s\n", v)
	}
	row("journal events written", "ddpmd_journal_written_total")
	row("journal events dropped", "ddpmd_journal_dropped_total")
	row("traces retained", "ddpmd_trace_retained_total")
	row("traces sampled (boring)", "ddpmd_trace_sampled_total")
	row("traces evicted", "ddpmd_trace_evicted_total")
	tw.Flush()

	if stages := m.stageQuantiles(); len(stages) > 0 {
		fmt.Println("\nstage latency (sampled):")
		tw = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  stage\tp50\tp95\tp99\tsamples")
		for _, st := range stages {
			fmt.Fprint(tw, renderStageRow(st))
		}
		tw.Flush()
	}

	if shardRows := m.shardRows(); len(shardRows) > 0 {
		fmt.Println("\nshards:")
		tw = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  shard\tprocessed\tidentified\tdropped\tqueue")
		for _, r := range shardRows {
			fmt.Fprintf(tw, "  %d\t%.0f\t%.0f\t%.0f\t%.0f\n",
				r.shard, r.processed, r.identified, r.dropped, r.queue)
		}
		tw.Flush()
	}

	code3, victimsBody, err := get(fmt.Sprintf("/victims?k=%d", *topK))
	if err != nil || code3 != http.StatusOK {
		fatal(fmt.Errorf("status: GET /victims: %d %v", code3, err))
	}
	var reports []struct {
		Node        int64 `json:"node"`
		Alarmed     bool  `json:"alarmed"`
		Identified  int64 `json:"identified"`
		Undecodable int64 `json:"undecodable"`
		TopSources  []struct {
			Node  int64 `json:"node"`
			Count int64 `json:"count"`
		} `json:"top_sources"`
	}
	if err := json.Unmarshal(victimsBody, &reports); err != nil {
		fatal(fmt.Errorf("status: bad /victims response: %w", err))
	}
	fmt.Printf("\nvictims (%d):\n", len(reports))
	tw = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  node\talarmed\tidentified\tundecodable\ttop sources")
	for _, r := range reports {
		var tops []string
		for _, s := range r.TopSources {
			tops = append(tops, fmt.Sprintf("%d(%d)", s.Node, s.Count))
		}
		fmt.Fprintf(tw, "  %d\t%v\t%d\t%d\t%s\n",
			r.Node, r.Alarmed, r.Identified, r.Undecodable, strings.Join(tops, " "))
	}
	tw.Flush()
}

// renderStageRow formats one stage's latency line. A histogram with no
// samples renders every quantile as "-" rather than a misleading "0s":
// nothing was measured, so nothing should look measured.
func renderStageRow(st stageQuantiles) string {
	if st.count == 0 {
		return fmt.Sprintf("  %s\t-\t-\t-\t0\n", st.name)
	}
	return fmt.Sprintf("  %s\t%s\t%s\t%s\t%.0f\n", st.name,
		fmtLatency(st.q[0]), fmtLatency(st.q[1]), fmtLatency(st.q[2]), st.count)
}

// fmtLatency prints a latency in seconds at a readable scale.
func fmtLatency(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d <= 0:
		return "-"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

// metricSample is one exposition line: its label set and value.
type metricSample struct {
	labels map[string]string
	value  float64
}

type metricsDump struct {
	series map[string][]metricSample
}

// parseMetrics consumes the subset of the Prometheus text format ddpmd
// emits: `name value` and `name{k="v",...} value` lines, comments
// skipped. Unparseable lines are ignored — status should degrade, not
// die, on a newer daemon.
func parseMetrics(body []byte) *metricsDump {
	m := &metricsDump{series: make(map[string][]metricSample)}
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Strip OpenMetrics exemplar suffixes (` # {trace_id="..."} v`)
		// so the value parse below sees the sample value, not the
		// exemplar's.
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		key := line[:sp]
		name, labels := key, map[string]string(nil)
		if b := strings.IndexByte(key, '{'); b >= 0 && strings.HasSuffix(key, "}") {
			name = key[:b]
			labels = parseLabels(key[b+1 : len(key)-1])
		}
		m.series[name] = append(m.series[name], metricSample{labels: labels, value: val})
	}
	return m
}

// parseLabels splits `k="v",k2="v2"`. Values with escaped quotes are
// unescaped the same way the exposition escapes them.
func parseLabels(s string) map[string]string {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return out
		}
		key := s[:eq]
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		out[key] = val.String()
		s = rest[i:]
		s = strings.TrimPrefix(s, `"`)
		s = strings.TrimPrefix(s, ",")
	}
	return out
}

// value finds the first sample of name whose labels include want.
func (m *metricsDump) value(name string, want map[string]string) (float64, bool) {
	for _, s := range m.series[name] {
		match := true
		for k, v := range want {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.value, true
		}
	}
	return 0, false
}

// shardRow is one shard's counters joined across the per-shard series.
type shardRow struct {
	shard                          int
	processed, identified, dropped float64
	queue                          float64
}

// shardRows joins the shard-labeled series into one row per shard,
// sorted numerically by shard index — lexical label order would file
// shard 10 between 1 and 2 once a daemon runs more than ten shards.
func (m *metricsDump) shardRows() []shardRow {
	byShard := make(map[int]*shardRow)
	get := func(labels map[string]string) *shardRow {
		n, err := strconv.Atoi(labels["shard"])
		if err != nil {
			return nil
		}
		r := byShard[n]
		if r == nil {
			r = &shardRow{shard: n}
			byShard[n] = r
		}
		return r
	}
	for _, s := range m.series["ddpmd_shard_processed_total"] {
		if r := get(s.labels); r != nil {
			r.processed = s.value
		}
	}
	for _, s := range m.series["ddpmd_shard_identified_total"] {
		if r := get(s.labels); r != nil {
			r.identified = s.value
		}
	}
	for _, s := range m.series["ddpmd_shard_dropped_total"] {
		if r := get(s.labels); r != nil {
			r.dropped = s.value
		}
	}
	for _, s := range m.series["ddpmd_shard_queue_depth"] {
		if r := get(s.labels); r != nil {
			r.queue = s.value
		}
	}
	out := make([]shardRow, 0, len(byShard))
	for _, r := range byShard {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].shard < out[j].shard })
	return out
}

type stageQuantiles struct {
	name  string
	q     [3]float64 // p50, p95, p99
	count float64
}

// stageQuantiles collects the per-stage latency summary series in a
// stable order.
func (m *metricsDump) stageQuantiles() []stageQuantiles {
	byStage := make(map[string]*stageQuantiles)
	for _, s := range m.series["ddpmd_stage_latency_summary_seconds"] {
		stage := s.labels["stage"]
		if stage == "" {
			continue
		}
		st := byStage[stage]
		if st == nil {
			st = &stageQuantiles{name: stage}
			byStage[stage] = st
		}
		switch s.labels["quantile"] {
		case "0.5":
			st.q[0] = s.value
		case "0.95":
			st.q[1] = s.value
		case "0.99":
			st.q[2] = s.value
		}
	}
	for _, s := range m.series["ddpmd_stage_latency_summary_seconds_count"] {
		if st := byStage[s.labels["stage"]]; st != nil {
			st.count = s.value
		}
	}
	out := make([]stageQuantiles, 0, len(byStage))
	for _, st := range byStage {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
