// Command ddpmd is the online source-identification daemon: it ingests
// marked-packet header records from victim NICs over the wire protocol
// (TCP frames, UDP datagrams, or JSONL replay), runs the paper's
// detect → identify → block loop per victim, and exposes an HTTP admin
// plane (/healthz, /metrics, /blocklist).
//
//	ddpmd serve -topo torus -dims 8x8 -tcp :7420 -http :7421
//	ddpmd serve -topo torus -dims 8x8 -replay trace.jsonl -http :7421
//	ddpmd serve -topo torus -dims 8x8 -journal audit.jsonl -pprof
//	ddpmd loadgen -topo torus -dims 8x8 -zombies 3 -addr 127.0.0.1:7420
//	ddpmd loadgen -topo torus -dims 8x8 -addr 127.0.0.1:7420 -retry 8
//	ddpmd loadgen -topo torus -dims 8x8 -jsonl flood.jsonl
//	ddpmd status -http 127.0.0.1:7421
//
// Clustered operation: each instance names itself and its peers, and
// the fleet partitions victims by consistent hashing — records landing
// on the wrong instance are forwarded to their owner, and blocklist
// mutations gossip fleet-wide:
//
//	ddpmd serve -topo torus -dims 8x8 -tcp :7420 -http :7421 \
//	    -cluster 127.0.0.1:7420 -peers 127.0.0.1:7430,127.0.0.1:7440
//	ddpmd loadgen -topo torus -dims 8x8 -targets 127.0.0.1:7420,127.0.0.1:7430,127.0.0.1:7440
//	ddpmd cluster status -http 127.0.0.1:7421
//	ddpmd fleet trace 1f3a9c0b2d4e5f60 -http 127.0.0.1:7421
//
// A late instance joins a running fleet with -join: it dials any live
// member, learns the roster via gossip, and enters the ring; departing
// victims are handed back to it with their identification state:
//
//	ddpmd serve -topo torus -dims 8x8 -tcp :7450 -http :7451 \
//	    -cluster 127.0.0.1:7450 -join 127.0.0.1:7420
//
// SIGTERM/SIGINT drain gracefully: listeners close, queued records are
// processed, /healthz reports "draining" until exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/loadgen"
	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "loadgen":
		runLoadgen(os.Args[2:])
	case "status":
		runStatus(os.Args[2:])
	case "cluster":
		runCluster(os.Args[2:])
	case "trace":
		runTrace(os.Args[2:])
	case "fleet":
		runFleet(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ddpmd serve|loadgen|status|cluster|trace|fleet [flags] (-h for flags)")
	os.Exit(2)
}

func serve(args []string) {
	fs := flag.NewFlagSet("ddpmd serve", flag.ExitOnError)
	var (
		topoKind = fs.String("topo", "torus", "topology: mesh, torus, hypercube")
		dims     = fs.String("dims", "8x8", "dims, e.g. 8x8, 4x4x4, or cube dimension")
		tcpAddr  = fs.String("tcp", ":7420", "TCP ingest listen address (empty disables)")
		udpAddr  = fs.String("udp", "", "UDP ingest listen address (empty disables)")
		httpAddr = fs.String("http", ":7421", "HTTP admin listen address (empty disables)")
		shards   = fs.Int("shards", 4, "worker shards")
		queue    = fs.Int("queue", 4096, "record sub-batches buffered per shard")
		cusumWin = fs.Int64("cusum-window", 500, "CUSUM window in ticks")
		cusumK   = fs.Float64("cusum-slack", 4, "CUSUM slack")
		cusumH   = fs.Float64("cusum-threshold", 40, "CUSUM alarm threshold")
		entWin   = fs.Int64("entropy-window", 500, "entropy window in ticks (-1 disables)")
		entDelta = fs.Float64("entropy-delta", 1.5, "entropy alarm delta in bits")
		blockN   = fs.Int64("block-threshold", 100, "identifications before auto-block")
		blockTTL = fs.Duration("block-ttl", time.Minute, "auto-block TTL (0 or negative = permanent)")
		admitN   = fs.Int("sketch-admit", 64, "records from a destination before exact victim state materializes (1 = first record, negative disables the gate)")
		vicTTL   = fs.Duration("victim-ttl", 10*time.Minute, "sweep idle victim state back to sketch-only after this (0 disables)")
		grace    = fs.Duration("drain-grace", 250*time.Millisecond, "per-connection drain grace")
		idle     = fs.Duration("idle-timeout", 2*time.Minute, "shed TCP peers idle this long (negative disables)")
		replay   = fs.String("replay", "", "replay a JSONL record/trace file instead of exiting on idle")
		victim   = fs.Int("replay-victim", -1, "victim filter for trace replay (-1 = all forward hops)")
		journal  = fs.String("journal", "", "append attack-audit events as JSONL to this file")
		jdepth   = fs.Int("journal-depth", 1024, "audit events buffered before shedding")
		enablePP = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the admin plane")
		trBuf    = fs.Int("trace-buffer", 4096, "flight-recorder capacity in traces (negative disables tracing)")
		trSample = fs.Int("trace-sample", 64, "retain 1 in N boring traces (interesting outcomes always retained)")
		trSlow   = fs.Duration("trace-slow", time.Millisecond, "always retain traces with any span above this")

		clSelf   = fs.String("cluster", "", "this instance's advertised TCP ingest address: enables cluster mode")
		clPeers  = fs.String("peers", "", "comma-separated peer ingest addresses (cluster mode)")
		clJoin   = fs.String("join", "", "address of any live fleet member to join at runtime (cluster mode; the roster is learned via gossip)")
		clGossip = fs.Duration("gossip-interval", 500*time.Millisecond, "anti-entropy gossip cadence (cluster mode)")
		clFail   = fs.Duration("fail-after", 0, "declare a silent peer dead after this long (0 = 4×gossip-interval)")
		clVNodes = fs.Int("vnodes", 64, "virtual nodes per member on the ownership ring (cluster mode)")
	)
	fs.Parse(args)

	net2, err := buildNet(*topoKind, *dims)
	if err != nil {
		fatal(err)
	}
	var j *pipeline.Journal
	if *journal != "" {
		if j, err = pipeline.OpenJournal(*journal, *jdepth); err != nil {
			fatal(err)
		}
	}
	var newCluster func(*pipeline.Pipeline) (pipeline.ClusterNode, error)
	if *clSelf != "" {
		var peers []string
		for _, a := range strings.Split(*clPeers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				peers = append(peers, a)
			}
		}
		self, join, interval, failAfter, vnodes, admit := *clSelf, *clJoin, *clGossip, *clFail, *clVNodes, *admitN
		newCluster = func(p *pipeline.Pipeline) (pipeline.ClusterNode, error) {
			n, err := cluster.New(p, cluster.Config{
				Self: self, Peers: peers, Join: join,
				SketchAdmit:    admit,
				GossipInterval: interval, FailAfter: failAfter, VNodes: vnodes,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, format+"\n", args...)
				},
			})
			if err != nil {
				return nil, err
			}
			return n, nil
		}
	} else if *clPeers != "" {
		fatal(fmt.Errorf("serve: -peers requires -cluster <self-addr>"))
	} else if *clJoin != "" {
		fatal(fmt.Errorf("serve: -join requires -cluster <self-addr>"))
	}
	d, err := pipeline.Start(pipeline.ServerConfig{
		Pipeline: pipeline.Config{
			Net: net2, Shards: *shards, QueueLen: *queue,
			CUSUMWindow: eventq.Time(*cusumWin), CUSUMSlack: *cusumK, CUSUMThreshold: *cusumH,
			EntropyWindow: eventq.Time(*entWin), EntropyDelta: *entDelta,
			BlockThreshold: *blockN, BlockTTL: effectiveBlockTTL(*blockTTL),
			SketchAdmit: *admitN, VictimTTL: *vicTTL,
			Journal:     j,
			TraceBuffer: *trBuf, TraceSampleN: *trSample, TraceSlowThreshold: *trSlow,
		},
		TCPAddr: *tcpAddr, UDPAddr: *udpAddr, HTTPAddr: *httpAddr,
		DrainGrace: *grace, IdleTimeout: *idle,
		EnablePprof: *enablePP,
		NewCluster:  newCluster,
	})
	if err != nil {
		if j != nil {
			j.Close()
		}
		fatal(err)
	}
	if *journal != "" {
		fmt.Printf("ddpmd: attack audit journal %s\n", *journal)
	}
	fmt.Printf("ddpmd: fabric %s (topo id %#08x)\n", net2.Name(), d.Pipeline().TopoID())
	for name, addr := range map[string]net.Addr{"tcp": d.TCPAddr(), "udp": d.UDPAddr(), "http": d.HTTPAddr()} {
		if addr != nil {
			fmt.Printf("ddpmd: %s %s\n", name, addr)
		}
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		// Batch the replay through pooled slabs: records accumulate until
		// the slab fills, then ship as one partitioned batch — the same
		// hot path the wire listeners feed.
		slab := d.Pipeline().GetSlab()
		n, err := wire.ReadJSONL(f, wire.JSONLConfig{
			Topo:   d.Pipeline().TopoID(),
			Victim: topology.NodeID(*victim),
		}, func(rec wire.Record) error {
			slab.Append(rec)
			if slab.Free() == 0 {
				d.Pipeline().SubmitSlab(slab)
				slab = d.Pipeline().GetSlab()
			}
			return nil
		})
		d.Pipeline().SubmitSlab(slab)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ddpmd: replayed %d records from %s\n", n, *replay)
	}

	// SIGQUIT dumps the flight recorder to stderr and keeps serving —
	// the "what just happened" signal, distinct from the drain signals.
	stopDump := d.WatchDumpSignal(os.Stderr, syscall.SIGQUIT)
	defer stopDump()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	failed := false
	select {
	case s := <-sig:
		fmt.Printf("ddpmd: %v, draining\n", s)
	case err := <-d.Errors():
		// A fatal background failure (e.g. the admin plane dying) must
		// stop the daemon, not leave it serving blind.
		fmt.Fprintln(os.Stderr, "ddpmd: fatal:", err)
		failed = true
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		fatal(err)
	}
	snap := d.Pipeline().Snapshot()
	fmt.Printf("ddpmd: drained; processed %d records (%d dropped, %d identified, %d alarms, %d blocks)\n",
		snap.Processed, snap.Dropped, snap.Identified, snap.Alarms, snap.Blocks)
	if failed {
		os.Exit(1)
	}
}

func runLoadgen(args []string) {
	fs := flag.NewFlagSet("ddpmd loadgen", flag.ExitOnError)
	var (
		topoKind = fs.String("topo", "torus", "topology: mesh, torus, hypercube")
		dims     = fs.String("dims", "8x8", "dims, e.g. 8x8, 4x4x4, or cube dimension")
		zombies  = fs.Int("zombies", 3, "number of compromised nodes")
		seed     = fs.Uint64("seed", 1, "deterministic scenario seed")
		gap      = fs.Int64("gap", 2, "attack CBR gap in ticks per zombie")
		bg       = fs.Float64("bg", 0.002, "background injection rate per node per tick")
		warmup   = fs.Int64("warmup", 3000, "quiet ticks before the flood")
		atk      = fs.Int64("attack", 6000, "flood duration in ticks")
		victim   = fs.Int("victim", -1, "victim node (-1 = highest-numbered)")
		addr     = fs.String("addr", "", "stream records to this ddpmd TCP address")
		targets  = fs.String("targets", "", "comma-separated ddpmd TCP addresses: spray batches round-robin across a cluster fleet (acked sessions)")
		jsonl    = fs.String("jsonl", "", "write records as JSONL to this file (\"-\" = stdout)")
		retry    = fs.Int("retry", 0, "reconnect attempts per delivery (0 = legacy fire-and-forget stream)")
		buffer   = fs.Int("buffer", 1<<16, "unacked records the resilient client buffers across reconnects")
		batch    = fs.Int("batch", 1024, "records per sealed frame (capped by the wire format; oversize is an error)")
		trace    = fs.Bool("trace", false, "stamp a trace context on every record (negotiated over the acked session; implies -retry 1)")
	)
	fs.Parse(args)
	sinks := 0
	for _, s := range []string{*addr, *targets, *jsonl} {
		if s != "" {
			sinks++
		}
	}
	if sinks != 1 {
		fatal(fmt.Errorf("loadgen: exactly one of -addr, -targets or -jsonl is required"))
	}
	if *trace && *addr != "" && *retry <= 0 {
		// Trace contexts ride the negotiated session protocol; the
		// legacy fire-and-forget stream has no hello to negotiate on.
		*retry = 1
	}

	dimList, err := parseDims(*dims)
	if err != nil {
		fatal(err)
	}
	res, err := loadgen.Generate(loadgen.Scenario{
		Topo:   core.TopoSpec{Kind: *topoKind, Dims: dimList},
		Victim: topology.NodeID(*victim), Zombies: *zombies, Seed: *seed,
		AttackGap: eventq.Time(*gap), Background: *bg,
		Warmup: eventq.Time(*warmup), Attack: eventq.Time(*atk),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %s victim %d, zombies %v, %d records (%d in attack window)\n",
		res.TopoName, res.Victim, res.Zombies, len(res.Records), res.AttackRecords)

	switch {
	case *targets != "":
		// Cluster spray: one acked session per instance, batches dealt
		// round-robin — every instance ingests a slice of the campaign
		// and the fleet's forwarding tier reassembles per-victim order
		// of magnitude (identification is order-insensitive tallying, so
		// interleaving across instances is harmless).
		var addrs []string
		for _, a := range strings.Split(*targets, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			fatal(fmt.Errorf("loadgen: -targets is empty"))
		}
		attempts := *retry
		if attempts <= 0 {
			attempts = 1
		}
		clients := make([]*wire.Client, len(addrs))
		for i, a := range addrs {
			c, err := wire.NewClient(wire.ClientConfig{
				Addr: a, Seed: *seed + uint64(i),
				BufferRecords: *buffer, MaxAttempts: attempts,
				MaxBatch: *batch, Trace: *trace,
			})
			if err != nil {
				fatal(err)
			}
			clients[i] = c
		}
		next := 0
		if err := res.Stream(func(recs []wire.Record) error {
			c := clients[next%len(clients)]
			next++
			return c.Send(recs)
		}, *batch); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		}
		var delivered, sent, lost uint64
		for i, c := range clients {
			if err := c.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", addrs[i], err)
			}
			delivered += c.Delivered()
			sent += c.Sent()
			lost += c.Lost()
		}
		fmt.Fprintf(os.Stderr, "loadgen: delivered %d of %d records across %d targets (%d lost)\n",
			delivered, sent, len(addrs), lost)
		if lost > 0 {
			os.Exit(1)
		}
	case *addr != "" && *retry > 0:
		// Resilient delivery: acked session with reconnect/backoff, so a
		// daemon restart mid-stream costs retransmits, not records.
		c, err := wire.NewClient(wire.ClientConfig{
			Addr: *addr, Seed: *seed,
			BufferRecords: *buffer, MaxAttempts: *retry,
			MaxBatch: *batch, Trace: *trace,
		})
		if err != nil {
			fatal(err)
		}
		if err := res.Stream(c.Send, *batch); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		}
		if err := c.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: delivered %d of %d records to %s (%d lost, %d resent, %d reconnects)\n",
			c.Delivered(), c.Sent(), *addr, c.Lost(), c.Resent(), c.Reconnects())
		if c.Lost() > 0 {
			os.Exit(1)
		}
	case *addr != "":
		conn, err := net.Dial("tcp", *addr)
		if err != nil {
			fatal(err)
		}
		defer conn.Close()
		w := wire.NewWriter(conn)
		if err := w.WriteRecords(res.Records); err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: streamed %d records in %d frames to %s\n",
			w.Records(), w.Frames(), *addr)
	default:
		out := os.Stdout
		if *jsonl != "-" {
			f, err := os.Create(*jsonl)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		for _, r := range res.Records {
			if err := enc.Encode(map[string]any{
				"t": int64(r.T), "topo": res.TopoName, "victim": int64(r.Victim),
				"mf": r.MF, "src": r.Src.String(), "proto": uint8(r.Proto),
			}); err != nil {
				fatal(err)
			}
		}
	}
}

// effectiveBlockTTL maps the user-facing -block-ttl convention (0 or
// negative = permanent) onto pipeline.Config.BlockTTL, where zero means
// "use the default" and only a negative value means permanent. Without
// this translation a `-block-ttl 0` would silently become the 60s
// default — the opposite of what the flag promised.
func effectiveBlockTTL(d time.Duration) time.Duration {
	if d <= 0 {
		return -1
	}
	return d
}

func buildNet(kind, dims string) (topology.Network, error) {
	dimList, err := parseDims(dims)
	if err != nil {
		return nil, err
	}
	return core.BuildTopology(core.TopoSpec{Kind: kind, Dims: dimList})
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad dims %q: %v", s, err)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddpmd:", err)
	os.Exit(1)
}
