package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"text/tabwriter"
	"time"
)

// traceEntry mirrors pipeline.TraceJSON — decoded here rather than
// imported so the CLI keeps working against daemons a version ahead or
// behind.
type traceEntry struct {
	ID      string `json:"id"`
	Outcome string `json:"outcome"`
	Victim  int64  `json:"victim"`
	Source  int64  `json:"source"`
	Shard   int32  `json:"shard"`
	StartNS int64  `json:"start_unix_nano"`
	SentNS  int64  `json:"sent_unix_nano"`
	Origin  string `json:"origin"`

	WireNS     int64 `json:"wire_ns"`
	ForwardNS  int64 `json:"forward_ns"`
	IngestNS   int64 `json:"ingest_ns"`
	IdentifyNS int64 `json:"identify_ns"`
	DetectNS   int64 `json:"detect_ns"`
	BlockNS    int64 `json:"block_ns"`
	TotalNS    int64 `json:"total_ns"`
}

// runTrace fetches retained traces from a daemon's /debug/traces and
// renders them as span-timeline table rows, newest first.
func runTrace(args []string) {
	fs := flag.NewFlagSet("ddpmd trace", flag.ExitOnError)
	var (
		httpAddr = fs.String("http", "127.0.0.1:7421", "admin plane address of the daemon")
		victim   = fs.String("victim", "", "only traces for this victim node")
		source   = fs.String("source", "", "only traces for this identified source node")
		outcome  = fs.String("outcome", "", "only traces with this outcome (identified, undecodable, blocked_hit, alarm, block, drop, rejected, resync)")
		id       = fs.String("id", "", "one trace by hex id (e.g. off a /metrics exemplar)")
		limit    = fs.Int("limit", 50, "max traces shown (0 = all retained)")
		minCount = fs.Int("min", 0, "exit nonzero unless at least this many traces matched")
		timeout  = fs.Duration("timeout", 5*time.Second, "HTTP timeout")
		jsonOut  = fs.Bool("json", false, "emit the raw /debug/traces JSON instead of the table")
	)
	fs.Parse(args)

	q := url.Values{}
	for k, v := range map[string]string{"victim": *victim, "source": *source, "outcome": *outcome, "id": *id} {
		if v != "" {
			q.Set(k, v)
		}
	}
	if *limit > 0 {
		q.Set("limit", fmt.Sprint(*limit))
	}
	u := fmt.Sprintf("http://%s/debug/traces?%s", *httpAddr, q.Encode())
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(u)
	if err != nil {
		fatal(fmt.Errorf("trace: %w", err))
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(fmt.Errorf("trace: %w", err))
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("trace: GET /debug/traces: %d: %s", resp.StatusCode, strings.TrimSpace(string(body))))
	}
	var traces []traceEntry
	if err := json.Unmarshal(body, &traces); err != nil {
		fatal(fmt.Errorf("trace: bad /debug/traces response: %w", err))
	}

	if *jsonOut {
		os.Stdout.Write(body)
		if len(traces) < *minCount {
			fmt.Fprintf(os.Stderr, "trace: %d traces matched, wanted at least %d\n", len(traces), *minCount)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%d traces (newest first)\n", len(traces))
	if len(traces) > 0 {
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  id\toutcome\tvictim\tsource\tshard\twire\tforward\tingest\tidentify\tdetect\tblock\ttotal")
		for _, t := range traces {
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				t.ID, t.Outcome, fmtNode(t.Victim), fmtNode(t.Source), fmtNode(int64(t.Shard)),
				fmtSpan(t.WireNS), fmtSpan(t.ForwardNS), fmtSpan(t.IngestNS), fmtSpan(t.IdentifyNS),
				fmtSpan(t.DetectNS), fmtSpan(t.BlockNS), fmtSpan(t.TotalNS))
		}
		tw.Flush()
	}
	if len(traces) < *minCount {
		fmt.Fprintf(os.Stderr, "trace: %d traces matched, wanted at least %d\n", len(traces), *minCount)
		os.Exit(1)
	}
}

// fmtNode renders a node id, with "-" for the -1 "not applicable"
// sentinel (stream-level events, unidentified sources).
func fmtNode(n int64) string {
	if n < 0 {
		return "-"
	}
	return fmt.Sprint(n)
}

// fmtSpan renders a span duration in nanoseconds; negative means the
// record never reached that stage.
func fmtSpan(ns int64) string {
	switch {
	case ns < 0:
		return "-"
	case ns == 0:
		// A measured-but-zero span (clock granularity) is not the same
		// as an unreached stage.
		return "0ns"
	default:
		return fmtLatency(float64(ns) / 1e9)
	}
}
