package main

import (
	"testing"
	"time"
)

// TestEffectiveBlockTTL: the serve flag promises "0 or negative =
// permanent", but pipeline.Config treats 0 as "use the 60s default" —
// the CLI must translate, or -block-ttl 0 silently means one minute.
// (pipeline's TestBlockTTLPermanentNegative covers the other side: a
// negative BlockTTL survives applyDefaults and blocks permanently.)
func TestEffectiveBlockTTL(t *testing.T) {
	cases := []struct {
		in, want time.Duration
	}{
		{0, -1},
		{-time.Second, -1},
		{time.Minute, time.Minute},
		{5 * time.Second, 5 * time.Second},
	}
	for _, c := range cases {
		if got := effectiveBlockTTL(c.in); got != c.want {
			t.Errorf("effectiveBlockTTL(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
