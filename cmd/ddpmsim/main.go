// Command ddpmsim runs one configurable DDoS scenario on a simulated
// cluster interconnect and reports the full pipeline outcome: fabric
// statistics, detection, per-source identification and blocking.
//
//	ddpmsim -topo mesh -dims 8x8 -routing minimal-adaptive \
//	        -zombies 4 -gap 4 -bg 0.002 -warmup 2000 -attack 3000
//
// The victim is the highest-numbered node; zombies are drawn uniformly
// from the remaining nodes using -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traceback"
)

func main() {
	var (
		topoKind = flag.String("topo", "mesh", "topology: mesh, torus, hypercube")
		dims     = flag.String("dims", "8x8", "dims, e.g. 8x8, 4x4x4, or cube dimension for hypercube")
		routing  = flag.String("routing", "minimal-adaptive", "routing: "+strings.Join(core.RoutingNames(), ", "))
		scheme   = flag.String("scheme", "ddpm", "marking scheme: "+strings.Join(core.SchemeNames(), ", "))
		zombies  = flag.Int("zombies", 4, "number of compromised nodes")
		gap      = flag.Int64("gap", 4, "attack CBR gap in ticks per zombie")
		bg       = flag.Float64("bg", 0.002, "background injection rate per node per tick")
		warmup   = flag.Int64("warmup", 2000, "warmup ticks before the attack")
		atk      = flag.Int64("attack", 3000, "attack ticks before blocking")
		after    = flag.Int64("after", 2000, "post-blocking measurement ticks")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		traceTo  = flag.String("trace", "", "write a JSONL marking trace to this file")
	)
	flag.Parse()

	dimList, err := parseDims(*dims)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Topo:    core.TopoSpec{Kind: *topoKind, Dims: dimList},
		Routing: *routing, Scheme: *scheme, Seed: *seed, QueueCap: 256,
	}
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.WrapScheme = func(inner marking.Scheme) marking.Scheme {
			return trace.New(inner, f)
		}
	}
	cl, err := core.Build(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cluster: %s (%d nodes, degree %d, diameter %d), routing %s, scheme %s\n",
		cl.Net.Name(), cl.Net.NumNodes(), cl.Net.Degree(), cl.Net.Diameter(),
		cl.Router.Alg.Name(), cl.Scheme.Name())

	victim := topology.NodeID(cl.Net.NumNodes() - 1)
	zstream := cl.Rng.Stream("zombies")
	zset := map[topology.NodeID]bool{}
	for len(zset) < *zombies {
		z := topology.NodeID(zstream.Intn(cl.Net.NumNodes()))
		if z != victim {
			zset[z] = true
		}
	}
	// Sorted node order: iterating the map directly would leak its
	// random order into the banner and event tie-breaking.
	znodes := make([]topology.NodeID, 0, len(zset))
	for z := range zset {
		znodes = append(znodes, z)
	}
	sort.Slice(znodes, func(i, j int) bool { return znodes[i] < znodes[j] })
	var zs []attack.Zombie
	fmt.Printf("victim: node %d %v\nzombies:", victim, cl.Net.CoordOf(victim))
	for _, z := range znodes {
		zs = append(zs, attack.Zombie{
			Node: z, Victim: victim, Proto: packet.ProtoTCPSYN,
			Arrival: attack.CBR{Interval: eventq.Time(*gap)},
			Spoof:   attack.RandomSpoof{Plan: cl.Plan, R: cl.Rng.Stream(fmt.Sprintf("spoof%d", z))},
		})
	}
	for _, z := range zs {
		fmt.Printf(" %d%v", z.Node, cl.Net.CoordOf(z.Node))
	}
	fmt.Println()

	end := eventq.Time(*warmup + *atk + *after)
	flood := &attack.Flood{Zombies: zs, Start: eventq.Time(*warmup), Stop: end,
		RandomID: cl.Rng.Stream("ids")}
	if err := flood.Launch(cl.Sim, cl.Plan); err != nil {
		fatal(err)
	}
	bgl := &attack.Background{Pattern: attack.Uniform, InjectionRate: *bg,
		Start: 0, Stop: end, R: cl.Rng.Stream("bg")}
	if err := bgl.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
		fatal(err)
	}
	fmt.Printf("traffic: %d attack packets, %d background packets\n",
		flood.Launched(), bgl.Launched())

	det := core.NewVictimDetectors(eventq.Time(*warmup))
	var ident *traceback.DDPMIdentifier
	if d, err := cl.DDPM(); err == nil {
		ident = traceback.NewDDPMIdentifier(d, victim)
	}
	cl.Sim.OnDeliver(func(now eventq.Time, pk *packet.Packet) {
		if pk.DstNode != victim {
			return
		}
		det.Observe(now, pk)
		if ident != nil {
			ident.Observe(pk)
		}
	})
	cl.Sim.RunAll(2_000_000_000)

	st := cl.Sim.Stats()
	fmt.Printf("fabric: injected %d, delivered %d, dropped %d, avg hops %.2f, avg latency %.1f ticks\n",
		st.Injected, st.Delivered, st.DroppedTotal(), st.AvgHops(), st.AvgLatency())
	if det.Alarmed() {
		fmt.Printf("detection: ALARM at tick %d (attack began at %d)\n", det.AlarmedAt(), *warmup)
	} else {
		fmt.Println("detection: no alarm")
	}
	if ident == nil {
		fmt.Println("identification: scheme is not DDPM; no single-packet attribution available")
		return
	}
	threshold := int64(4 * (*bg) * float64(end))
	if threshold < 4 {
		threshold = 4
	}
	srcs := ident.SourcesAbove(threshold)
	fmt.Printf("identification: %d sources above threshold %d packets:\n", len(srcs), threshold)
	correct := 0
	for _, s := range srcs {
		mark := "INNOCENT?"
		if zset[s] {
			mark = "zombie"
			correct++
		}
		fmt.Printf("  node %d %v: %d packets attributed (%s)\n",
			s, cl.Net.CoordOf(s), ident.Count(s), mark)
	}
	fmt.Printf("result: %d/%d zombies identified, %d false positives\n",
		correct, len(zset), len(srcs)-correct)
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad dims %q: %v", s, err)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddpmsim:", err)
	os.Exit(1)
}
