// Command figures regenerates the paper's figures and the measured
// experiment series (E1–E3, E5 in DESIGN.md §3):
//
//	figures -figure 2    # routing deliverability matrix (Figure 2)
//	figures -figure 3a   # simple-PPM edge samples (Figure 3a)
//	figures -figure 3b   # DDPM mesh vector trace (Figure 3b)
//	figures -figure 3c   # DDPM hypercube trace (Figure 3c)
//	figures -figure E1   # PPM convergence vs path length (CSV)
//	figures -figure E2   # DPM ambiguity (CSV)
//	figures -figure E3   # DDPM accuracy matrix (CSV)
//	figures -figure E5   # end-to-end DDoS pipeline vs zombie count (CSV)
//	figures -figure E6   # fault tolerance: delivery vs failed cables (CSV)
//	figures -figure E7   # service-level SYN-flood denial & recovery (CSV)
//	figures -figure X1   # extension: fat-tree port stamping (CSV)
//	figures -figure X2   # extension: trusted-switch placement (CSV)
//	figures -figure X4   # extension: compromised-switch blast radius (CSV)
//	figures -all         # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	figure := flag.String("figure", "", "figure id: 2, 3a, 3b, 3c, E1, E2, E3, E5")
	all := flag.Bool("all", false, "run every figure")
	seed := flag.Uint64("seed", 1, "experiment seed")
	trials := flag.Int("trials", 30, "trials per E1 cell / E3 row")
	flag.Parse()

	run := func(id string) error {
		switch id {
		case "2":
			return core.WriteFigure2(os.Stdout, *seed)
		case "3a":
			return figure3a()
		case "3b":
			return figure3b()
		case "3c":
			return figure3c()
		case "E1", "e1":
			return figureE1(*seed, *trials)
		case "E2", "e2":
			return figureE2(*seed)
		case "E3", "e3":
			return figureE3(*seed, *trials)
		case "E5", "e5":
			return figureE5(*seed)
		case "E6", "e6":
			return figureE6(*seed)
		case "E7", "e7":
			return figureE7(*seed)
		case "X4", "x4":
			return figureX4(*seed)
		case "X1", "x1":
			return figureX1(*seed, *trials)
		case "X2", "x2":
			return figureX2(*seed)
		default:
			return fmt.Errorf("unknown figure %q", id)
		}
	}

	ids := []string{*figure}
	if *all {
		ids = []string{"2", "3a", "3b", "3c", "E1", "E2", "E3", "E5", "E6", "E7", "X1", "X2", "X4"}
	} else if *figure == "" {
		flag.Usage()
		os.Exit(2)
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if err := run(id); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func figure3a() error {
	samples, err := core.Figure3aTrace()
	if err != nil {
		return err
	}
	fmt.Println("Figure 3a. Simple PPM edge samples on 4x4 mesh, path 0001->0011->0010->0110->1110")
	fmt.Println("  (victim 1110 decodes, for each possible marking switch, the sample below)")
	for i, s := range samples {
		fmt.Printf("  mark at hop %d: %s\n", i, s)
	}
	return nil
}

func figure3b() error {
	vecs, src, err := core.Figure3bTrace()
	if err != nil {
		return err
	}
	fmt.Println("Figure 3b. DDPM on 4x4 mesh, adaptive route (1,1)->(2,3)")
	fmt.Print("  distance vector per hop:")
	for _, v := range vecs {
		fmt.Printf(" %v", v)
	}
	fmt.Printf("\n  victim (2,3) identifies source: %v\n", src)
	return nil
}

func figure3c() error {
	vecs, src, err := core.Figure3cTrace()
	if err != nil {
		return err
	}
	fmt.Println("Figure 3c. DDPM on 3-cube, route (1,1,0)->(0,0,0)")
	fmt.Print("  distance vector per hop:")
	for _, v := range vecs {
		fmt.Printf(" %v", v)
	}
	fmt.Printf("\n  victim (0,0,0) identifies source: %v\n", src)
	return nil
}

func figureE1(seed uint64, trials int) error {
	fmt.Println("E1. PPM convergence: packets the victim needs vs path length d (wide/idealized PPM, XY routing)")
	fmt.Println("p,d,mean_packets,ci95,analytic_ln(d)/p(1-p)^(d-1)")
	for _, p := range []float64{0.04, 0.1, 0.2} {
		for _, d := range []int{4, 8, 16, 24, 32, 48, 62} {
			// Skip cells whose analytic cost explodes (the paper's own
			// point: at cluster diameters PPM needs a low p, and even
			// then the overhead is enormous).
			if core.E1Analytic(p, d) > 100_000 {
				continue
			}
			row, err := core.RunE1(p, d, trials, seed, 1_000_000)
			if err != nil {
				return err
			}
			fmt.Printf("%.2f,%d,%.1f,%.1f,%.1f\n", row.P, row.D, row.MeanPkts, row.CI95, row.Analytic)
		}
	}
	return nil
}

func figureE2(seed uint64) error {
	fmt.Println("E2. DPM ambiguity: signatures per flow and colliding sources per signature")
	fmt.Println("topology,routing,diameter,flows,sigs_per_flow,srcs_per_sig,max_srcs_per_sig")
	cases := []struct {
		spec    core.TopoSpec
		routing string
	}{
		{core.Mesh2D(8), "xy"},
		{core.Mesh2D(8), "minimal-adaptive"},
		{core.Mesh2D(16), "xy"},
		{core.Mesh2D(16), "minimal-adaptive"},
		{core.Mesh2D(32), "xy"}, // diameter 62 > 16: positions wrap
		{core.Torus2D(16), "dor"},
		{core.Torus2D(16), "minimal-adaptive"},
	}
	for _, tc := range cases {
		row, err := core.RunE2(tc.spec, tc.routing, 20, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s,%s,%d,%d,%.2f,%.2f,%d\n",
			row.Topo, row.Routing, row.Diameter, row.FlowsMeasured,
			row.SigsPerFlowMean, row.SrcsPerSigMean, row.MaxSrcsPerSig)
	}
	return nil
}

func figureE3(seed uint64, trials int) error {
	fmt.Println("E3. DDPM single-packet identification accuracy (spoofed headers, garbage-preloaded MF)")
	fmt.Println("topology,routing,trials,correct,undecoded,accuracy")
	cases := []struct {
		spec    core.TopoSpec
		routing string
	}{
		{core.Mesh2D(8), "xy"},
		{core.Mesh2D(8), "west-first"},
		{core.Mesh2D(8), "north-last"},
		{core.Mesh2D(8), "negative-first"},
		{core.Mesh2D(8), "minimal-adaptive"},
		{core.Mesh2D(8), "fully-adaptive"},
		{core.Mesh2D(128), "minimal-adaptive"}, // Table 3 max mesh
		{core.Torus2D(16), "dor"},
		{core.Torus2D(16), "minimal-adaptive"},
		{core.Cube(10), "dor"},
		{core.Cube(10), "minimal-adaptive"},
		{core.Mesh(16, 16, 32), "minimal-adaptive"}, // paper's 8192-node 3-D split
	}
	for _, tc := range cases {
		row, err := core.RunE3(tc.spec, tc.routing, trials*10, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s,%s,%d,%d,%d,%.4f\n",
			row.Topo, row.Routing, row.Trials, row.Correct, row.Undecoded, row.Accuracy())
	}
	return nil
}

func figureE5(seed uint64) error {
	fmt.Println("E5. End-to-end DDoS pipeline on an 8x8 torus (detect -> identify -> block)")
	fmt.Println("zombies,attack_packets,detected,detect_tick,identified_all,false_positives,blocked_fraction")
	for _, z := range []int{1, 2, 4, 8, 16} {
		row, err := core.RunE5(core.E5Config{
			Topo: core.Torus2D(8), Zombies: z, Seed: seed + uint64(z),
			AttackGap: 4, Background: 0.002,
			WarmupTicks: 2000, AttackTicks: 3000, AfterTicks: 2000,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%d,%d,%v,%d,%v,%d,%.3f\n",
			row.Zombies, row.AttackPkts, row.Detected, row.DetectedAt,
			row.IdentifiedAll, row.FalsePositives, row.BlockedFraction)
	}
	return nil
}

func figureX1(seed uint64, trials int) error {
	fmt.Println("X1 (extension, §6.3). Fat-tree port stamping: single-packet source identification on indirect networks")
	fmt.Println("tree,leaves,mf_bits,trials,correct,accuracy")
	for _, cfg := range [][2]int{{2, 4}, {2, 8}, {2, 12}, {4, 3}, {4, 6}, {8, 4}} {
		row, err := core.RunX1(cfg[0], cfg[1], trials*10, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s,%d,%d,%d,%d,%.4f\n",
			row.Tree, row.Leaves, row.Bits, row.Trials, row.Correct,
			float64(row.Correct)/float64(row.Trials))
	}
	fmt.Println("\nMF scalability (Table 3 analog for fat trees):")
	for _, line := range core.FatTreeScalabilityRows() {
		fmt.Println("  " + line)
	}
	return nil
}

func figureX2(seed uint64) error {
	fmt.Println("X2 (extension, §6.1). Trusted-switch placement: greedy covers for all-pairs XY traffic")
	fmt.Println("topology,pairs,monitors,deterministic_coverage,adaptive_coverage")
	for _, k := range []int{4, 8} {
		for _, budget := range []int{1, 2, 4, 0} { // 0 = until full cover
			row, err := core.RunX2(k, budget, 2, seed)
			if err != nil {
				return err
			}
			fmt.Printf("%s,%d,%d,%.3f,%.3f\n",
				row.Topo, row.Pairs, row.Monitors, row.DeterministicCov, row.AdaptiveCov)
		}
	}
	return nil
}

func figureE6(seed uint64) error {
	fmt.Println("E6. Fault tolerance (Figure 2 quantified): delivery rate vs failed-cable fraction;")
	fmt.Println("    DDPM correctness is scored over delivered flows only")
	fmt.Println("topology,routing,fail_fraction,failed_cables,flows,delivered,delivery_rate,ddpm_correct")
	for _, f := range []float64{0, 0.02, 0.05, 0.1, 0.2} {
		for _, r := range []string{"xy", "west-first", "minimal-adaptive", "fully-adaptive"} {
			row, err := core.RunE6(core.Mesh2D(8), r, f, 500, seed)
			if err != nil {
				return err
			}
			fmt.Printf("%s,%s,%.2f,%d,%d,%d,%.3f,%d\n",
				row.Topo, row.Routing, row.FailFraction, row.FailedCables,
				row.Flows, row.Delivered, row.DeliveryRate(), row.DDPMCorrect)
		}
	}
	return nil
}

func figureE7(seed uint64) error {
	fmt.Println("E7. Service-level SYN-flood denial and recovery (6x6 mesh, 16-entry half-open table)")
	fmt.Println("zombies,phase,attempts,established,completion,refused,blocked,backscatter")
	for _, z := range []int{1, 2, 4} {
		rows, err := core.RunE7(core.E7Config{
			Topo: core.Mesh2D(6), Zombies: z, TableCap: 16,
			AttackGap: 2, Clients: 40, Seed: seed + uint64(z), WindowTicks: 4000,
		})
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%d,%s,%d,%d,%.3f,%d,%d,%d\n",
				z, r.Phase, r.Attempts, r.Established, r.CompletionRate(),
				r.Refused, r.Blocked, r.Backscatter)
		}
	}
	return nil
}

func figureX4(seed uint64) error {
	fmt.Println("X4 (ablation, §4.1/§6.2). Compromised-switch blast radius on an 8x8 mesh (adaptive routing)")
	fmt.Println("scheme,bad_switch,flows,through_bad,misattributed,misattributed_clean")
	for _, bad := range []int{0, 27, 36} { // corner, interior, interior
		for _, scheme := range []string{"ddpm", "ingress-stamp"} {
			row, err := core.RunX4(core.Mesh2D(8), scheme, topology.NodeID(bad), 600, seed)
			if err != nil {
				return err
			}
			fmt.Printf("%s,%d,%d,%d,%d,%d\n",
				row.Scheme, bad, row.Flows, row.ThroughBad, row.Misattributed, row.MisattributedClean)
		}
	}
	fmt.Println("note: misattributed_clean = flows that never crossed the liar; 0 means damage is contained")
	return nil
}
