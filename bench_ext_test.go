package clusterid

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// BenchmarkE6FaultTolerance regenerates the fault-tolerance rows:
// delivery rate at 10% failed cables per routing algorithm.
func BenchmarkE6FaultTolerance(b *testing.B) {
	for _, r := range []string{"xy", "west-first", "fully-adaptive"} {
		b.Run(r, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				row, err := core.RunE6(core.Mesh2D(8), r, 0.1, 300, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				rate += row.DeliveryRate()
				if row.DDPMCorrect != row.Delivered {
					b.Fatal("DDPM misidentified a delivered packet")
				}
			}
			b.ReportMetric(rate/float64(b.N), "delivery-rate")
		})
	}
}

// BenchmarkE7ServiceRecovery regenerates the three-phase service story
// and reports the attacked-phase completion rate.
func BenchmarkE7ServiceRecovery(b *testing.B) {
	var attacked, blocked float64
	for i := 0; i < b.N; i++ {
		rows, err := core.RunE7(core.E7Config{
			Topo: core.Mesh2D(6), Zombies: 2, TableCap: 16,
			AttackGap: 2, Clients: 40, Seed: uint64(i) + 3, WindowTicks: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
		attacked += rows[1].CompletionRate()
		blocked += rows[2].CompletionRate()
	}
	b.ReportMetric(attacked/float64(b.N), "attacked-completion")
	b.ReportMetric(blocked/float64(b.N), "blocked-completion")
}

// BenchmarkX1FatTreeStamping regenerates the indirect-network extension.
func BenchmarkX1FatTreeStamping(b *testing.B) {
	for _, cfg := range [][2]int{{2, 8}, {4, 6}} {
		b.Run(fmt.Sprintf("%d-ary-%d-tree", cfg[0], cfg[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := core.RunX1(cfg[0], cfg[1], 200, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				if row.Correct != row.Trials {
					b.Fatal("fat-tree stamping misidentified")
				}
			}
		})
	}
}

// BenchmarkX2PlacementGreedy regenerates the trusted-switch cover.
func BenchmarkX2PlacementGreedy(b *testing.B) {
	var monitors float64
	for i := 0; i < b.N; i++ {
		row, err := core.RunX2(8, 0, 1, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		monitors += float64(row.Monitors)
	}
	b.ReportMetric(monitors/float64(b.N), "monitors-for-full-cover")
}

// BenchmarkX4CompromisedSwitch regenerates the blast-radius ablation.
func BenchmarkX4CompromisedSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := core.RunX4(core.Mesh2D(8), "ddpm", topology.NodeID(27), 300, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if row.MisattributedClean != 0 {
			b.Fatal("corruption leaked to clean flows")
		}
	}
}
