// Package clusterid is the public API of this reproduction of
// "A Source Identification Scheme against DDoS Attacks in Cluster
// Interconnects" (Lee, Kim & Lee, ICPP Workshops 2004).
//
// It provides:
//
//   - cluster construction over the paper's direct networks (mesh,
//     torus, hypercube) with deterministic, partially adaptive and
//     fully adaptive routing;
//   - every marking scheme the paper analyzes, including the
//     contributed Deterministic Distance Packet Marking (DDPM);
//   - a victim-side Monitor that runs the full pipeline — detect the
//     DDoS, identify sources from single packets via DDPM, block them;
//   - the experiment runners that regenerate the paper's tables and
//     figures (see EXPERIMENTS.md).
//
// Quick start:
//
//	cl, _ := clusterid.New(clusterid.Config{Topo: clusterid.Mesh2D(8), Seed: 1})
//	mon, _ := clusterid.NewMonitor(cl, victimNode)
//	cl.Sim.OnDeliver(mon.Deliver)
//	// ... inject traffic, run cl.Sim, then:
//	sources := mon.IdentifiedSources(10)
package clusterid

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eventq"
	"repro/internal/filter"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/traceback"
)

// Re-exported configuration and cluster types. See internal/core for
// the full documentation of each field.
type (
	// Config assembles a cluster simulation (topology, routing,
	// marking scheme, fabric parameters, seed).
	Config = core.Config
	// TopoSpec names a topology by kind and radixes.
	TopoSpec = core.TopoSpec
	// Cluster is a fully wired simulation.
	Cluster = core.Cluster
)

// Topology spec constructors.
var (
	// Mesh2D builds a k×k mesh spec; Torus2D a k-ary 2-cube; Cube an
	// n-dimensional hypercube; Mesh an arbitrary n-dimensional mesh.
	Mesh2D  = core.Mesh2D
	Torus2D = core.Torus2D
	Cube    = core.Cube
	Mesh    = core.Mesh
)

// New builds a cluster from a config. The default scheme is DDPM on a
// congestion-aware fully-adaptive-minimal fabric.
func New(cfg Config) (*Cluster, error) { return core.Build(cfg) }

// RoutingNames and SchemeNames enumerate the accepted config values.
func RoutingNames() []string { return core.RoutingNames() }
func SchemeNames() []string  { return core.SchemeNames() }

// NodeID and Time are the simulator's node and clock types.
type (
	NodeID = topology.NodeID
	Time   = eventq.Time
	Packet = packet.Packet
)

// Monitor is the victim-side pipeline: detectors watch delivered
// traffic, the DDPM identifier attributes every packet to its true
// injection node, and a blocklist filters once sources are confirmed.
type Monitor struct {
	cluster *Cluster
	victim  NodeID

	Detectors  *core.VictimDetectors
	Identifier *traceback.DDPMIdentifier
	Blocklist  *filter.Blocklist

	// AutoBlock, when positive, arms automatic response: once any
	// detector alarms, every source whose attributed-packet tally
	// exceeds AutoBlock is blocklisted on the spot, with no operator in
	// the loop. Zero (the default) leaves blocking manual.
	AutoBlock int64

	// accepted counts packets that passed the blocklist; dropped those
	// it rejected.
	accepted, dropped uint64
}

// NewMonitor attaches a monitor to a DDPM cluster for one victim node.
func NewMonitor(cl *Cluster, victim NodeID) (*Monitor, error) {
	if victim < 0 || int(victim) >= cl.Net.NumNodes() {
		return nil, fmt.Errorf("clusterid: victim %d outside %s", victim, cl.Net.Name())
	}
	d, err := cl.DDPM()
	if err != nil {
		return nil, err
	}
	return &Monitor{
		cluster:    cl,
		victim:     victim,
		Detectors:  core.NewVictimDetectors(1000),
		Identifier: traceback.NewDDPMIdentifier(d, victim),
		Blocklist:  filter.NewBlocklist(d, victim),
	}, nil
}

// Deliver is the netsim delivery hook: call it from Sim.OnDeliver (or
// register it directly). Packets for other destinations are ignored.
func (m *Monitor) Deliver(now Time, pk *Packet) {
	if pk.DstNode != m.victim {
		return
	}
	if m.Blocklist.Len() > 0 && m.Blocklist.Check(pk) == filter.Drop {
		m.dropped++
		return
	}
	m.accepted++
	m.Detectors.Observe(now, pk)
	src, ok := m.Identifier.Observe(pk)
	if m.AutoBlock > 0 && ok && m.Detectors.Alarmed() &&
		m.Identifier.Count(src) > m.AutoBlock {
		m.Blocklist.Block(src)
	}
}

// UnderAttack reports whether any detector has alarmed, and when.
func (m *Monitor) UnderAttack() (bool, Time) {
	return m.Detectors.Alarmed(), m.Detectors.AlarmedAt()
}

// IdentifiedSources returns every source attributed strictly more than
// threshold packets — the candidates to block.
func (m *Monitor) IdentifiedSources(threshold int64) []NodeID {
	return m.Identifier.SourcesAbove(threshold)
}

// BlockSources adds nodes to the victim's blocklist; subsequent
// deliveries from them are dropped at the NIC.
func (m *Monitor) BlockSources(nodes []NodeID) { m.Blocklist.BlockAll(nodes) }

// Counts returns the accepted and blocklist-dropped delivery tallies.
func (m *Monitor) Counts() (accepted, dropped uint64) { return m.accepted, m.dropped }

// Victim returns the monitored node.
func (m *Monitor) Victim() NodeID { return m.victim }

// IdentifySource decodes one marking field as the victim would:
// S = D − V (mod k on a torus) or S = D ⊕ V on a hypercube.
func IdentifySource(cl *Cluster, victim NodeID, mf uint16) (NodeID, bool) {
	d, err := cl.DDPM()
	if err != nil {
		return topology.None, false
	}
	return d.IdentifySource(victim, mf)
}

// Experiment runners, re-exported for downstream benchmarking. See
// EXPERIMENTS.md for what each regenerates.
type (
	E1Row    = core.E1Row
	E2Row    = core.E2Row
	E3Row    = core.E3Row
	E5Row    = core.E5Row
	E5Config = core.E5Config
)

var (
	RunE1      = core.RunE1
	RunE2      = core.RunE2
	RunE3      = core.RunE3
	RunE5      = core.RunE5
	E1Analytic = core.E1Analytic
)

// Scalability re-exports for table regeneration.
var (
	ScalabilityTable = core.ScalabilityTable
	WriteTable       = core.WriteTable
	WriteFigure2     = core.WriteFigure2
)

// NewIngressFilter exposes the Ferguson–Senie baseline over a cluster's
// address plan (§2 [10]): switches verify the source address of locally
// injected packets.
func NewIngressFilter(cl *Cluster) *filter.IngressFilter {
	return filter.NewIngressFilter(cl.Plan)
}

// NewSYNTable exposes the SYN-flood detector for standalone use.
func NewSYNTable(capacity int, timeout Time) *detect.SYNTable {
	return detect.NewSYNTable(capacity, timeout)
}

// DDPMOf returns the cluster's DDPM scheme for direct marking-field
// work (codec access, manual identification).
func DDPMOf(cl *Cluster) (*marking.DDPM, error) { return cl.DDPM() }
