// Fattree: the paper's §6.3 future-work direction made concrete —
// source identification on an *indirect* network. Builds a 4-ary
// 3-tree (64 compute leaves, 48 switches), shows why DDPM's coordinate
// arithmetic has no analog there, and demonstrates the port-stamping
// scheme: on the ascending phase each switch's input down-port equals
// one digit of the source address, no matter which up-port the adaptive
// router picked, so the victim reads the attacker's address straight
// out of the 16-bit marking field.
package main

import (
	"fmt"

	"repro/internal/fattree"
	"repro/internal/packet"
	"repro/internal/rng"
)

func main() {
	tr, err := fattree.New(4, 3)
	if err != nil {
		panic(err)
	}
	st, err := fattree.NewStamper(tr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d leaves, %d switches, stamp uses %d/16 MF bits\n",
		tr.Name(), tr.NumLeaves(), tr.NumSwitches(), st.Bits())

	// One traced flow, with the adaptive up-phase made visible.
	src, dst := fattree.LeafID(13), fattree.LeafID(50)
	fmt.Printf("\nattacker leaf %d (digits %v) -> victim leaf %d (digits %v), NCA level %d\n",
		src, tr.Digits(src), dst, tr.Digits(dst), tr.NCALevel(src, dst))
	choose := fattree.RandomUp(rng.NewStream(7))
	hops, err := tr.Route(src, dst, tr.NCALevel(src, dst), choose)
	if err != nil {
		panic(err)
	}
	pk := &packet.Packet{}
	pk.Hdr.ID = 0xFFFF // attacker preloads the MF; the first stamp erases it
	st.Apply(pk, hops)
	for _, h := range hops {
		dir := "down"
		if h.Up {
			dir = "up  "
		}
		fmt.Printf("  %s level %d switch %3d, entered via port %d\n",
			dir, h.Switch.Level, h.Switch.Index, h.InPort)
	}
	got, ok := st.Identify(dst, pk.Hdr.ID)
	fmt.Printf("victim decodes MF %016b -> source leaf %d (ok=%v)\n", pk.Hdr.ID, got, ok)

	// Bulk accuracy under fully random adaptive up-routing and random
	// MF preloads.
	r := rng.NewStream(11)
	correct, trials := 0, 0
	for trials < 10000 {
		s := fattree.LeafID(r.Intn(tr.NumLeaves()))
		d := fattree.LeafID(r.Intn(tr.NumLeaves()))
		hops, err := tr.Route(s, d, tr.NCALevel(s, d), choose)
		if err != nil {
			panic(err)
		}
		p := &packet.Packet{}
		p.Hdr.ID = uint16(r.Intn(1 << 16))
		st.Apply(p, hops)
		trials++
		if g, ok := st.Identify(d, p.Hdr.ID); ok && g == s {
			correct++
		}
	}
	fmt.Printf("\nbulk: %d/%d flows identified exactly under adaptive up-routing\n", correct, trials)

	fmt.Println("\nMF scalability (the Table 3 analog for fat trees):")
	for _, k := range []int{2, 4, 8} {
		n, leaves := fattree.MaxLeavesIn16Bits(k)
		fmt.Printf("  %d-ary: up to n=%d, %d leaves\n", k, n, leaves)
	}
}
