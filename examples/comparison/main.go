// Comparison: the paper's core argument as a head-to-head — the same
// single-attacker scenario on an 8×8 mesh, once with deterministic XY
// routing and once with fully adaptive routing, traced back with
// DDPM, simple PPM and DPM. Reports packets-to-identification and
// whether the verdict survives adaptive routing.
package main

import (
	"fmt"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traceback"
)

const pktBudget = 30000

func main() {
	m := topology.NewMesh2D(8)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	attacker := m.IndexOf(topology.Coord{0, 0})
	victim := m.IndexOf(topology.Coord{7, 7})
	fmt.Printf("scenario: attacker %v floods victim %v on %s (14 hops via XY)\n\n",
		m.CoordOf(attacker), m.CoordOf(victim), m.Name())
	fmt.Printf("%-12s %-18s %-22s %s\n", "scheme", "routing", "packets to identify", "verdict")

	for _, routingName := range []string{"xy", "minimal-adaptive"} {
		newRouter := func(seed uint64) *routing.Router {
			var alg routing.Algorithm
			if routingName == "xy" {
				alg = routing.NewXY(m)
			} else {
				alg = routing.NewMinimalAdaptive(m)
			}
			r := routing.NewRouter(m, alg)
			r.Sel = routing.RandomSelector{R: rng.NewStream(seed)}
			return r
		}

		// --- DDPM: one packet, any routing. -------------------------
		{
			d, _ := marking.NewDDPM(m)
			r := newRouter(1)
			pk := sendOne(r, d, plan, attacker, victim, 0xDEAD)
			got, ok := d.IdentifySource(victim, pk.Hdr.ID)
			verdict := "WRONG"
			if ok && got == attacker {
				verdict = "exact source, single packet"
			}
			fmt.Printf("%-12s %-18s %-22d %s\n", "ddpm", routingName, 1, verdict)
		}

		// --- Simple PPM: needs many packets; ambiguous when adaptive.
		{
			scheme, _ := marking.NewSimplePPM(m, 0.2, rng.NewStream(2))
			r := newRouter(3)
			rec := traceback.ForSimplePPM(scheme)
			rec.MinCount = 4
			rec.Adjacency = m.IsNeighbor
			preload := rng.NewStream(4)
			needed := -1
			for i := 1; i <= pktBudget; i++ {
				rec.Observe(sendOne(r, scheme, plan, attacker, victim, uint16(preload.Intn(1<<16))))
				if i%50 == 0 || i < 50 {
					if srcs := rec.Sources(); len(srcs) == 1 && srcs[0] == attacker {
						needed = i
						break
					}
				}
			}
			verdict := fmt.Sprintf("never pinned 1 source in %d pkts (graph %d nodes)",
				pktBudget, len(rec.OnPathNodes()))
			shown := pktBudget
			if needed > 0 {
				verdict = "exact source"
				shown = needed
			}
			fmt.Printf("%-12s %-18s %-22d %s\n", "simple-ppm", routingName, shown, verdict)
		}

		// --- DPM: signature filtering; shatters when adaptive. ------
		{
			dpm := marking.NewDPM()
			r := newRouter(5)
			tbl := traceback.NewSignatureTable()
			for i := 0; i < 200; i++ {
				tbl.Learn(sendOne(r, dpm, plan, attacker, victim, 0))
			}
			sigs := tbl.SignaturesForFlow(plan.AddrOf(attacker))
			// How many innocent flows collide with the learned set?
			collisions := 0
			for s := 0; s < m.NumNodes(); s++ {
				if topology.NodeID(s) == attacker || topology.NodeID(s) == victim {
					continue
				}
				pk := sendOne(r, dpm, plan, topology.NodeID(s), victim, 0)
				if tbl.Match(pk) {
					collisions++
				}
			}
			verdict := fmt.Sprintf("path signature only: %d signature(s)/flow, %d innocent flows collide",
				sigs, collisions)
			fmt.Printf("%-12s %-18s %-22d %s\n", "dpm", routingName, 200, verdict)
		}
		fmt.Println()
	}
	fmt.Println("takeaway: DDPM is the only scheme whose verdict is exact, single-packet,")
	fmt.Println("and invariant under adaptive routing — the paper's Table 3 + §5 claim.")
}

func sendOne(r *routing.Router, scheme marking.Scheme, plan *packet.AddrPlan,
	src, dst topology.NodeID, preload uint16) *packet.Packet {
	path, err := r.Walk(src, dst, 0)
	if err != nil {
		panic(err)
	}
	pk := packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 0)
	pk.Hdr.ID = preload
	scheme.OnInject(pk)
	for i := 0; i+1 < len(path); i++ {
		scheme.OnForward(path[i], path[i+1], pk)
		pk.Hdr.TTL--
	}
	return pk
}
