// Hypercube: DDPM on a 10-cube (1024 nodes) under e-cube and fully
// adaptive routing. Demonstrates the XOR form of the marking (Figure 4's
// hypercube variant), scalability headroom up to the 16-cube of Table 3,
// and single-packet identification with deliberately hostile inputs
// (spoofed headers, garbage-preloaded marking fields, misrouted paths).
package main

import (
	"fmt"

	clusterid "repro"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	// Table 3 headroom: the whole 16-bit MF is the XOR word, so a
	// 16-cube (65536 nodes) is the limit.
	for _, n := range []int{3, 10, 16} {
		h := topology.NewHypercube(n)
		d, err := marking.NewDDPM(h)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s %6d nodes, MF bits used: %2d/16\n",
			h.Name(), h.NumNodes(), d.Codec().Bits())
	}
	if _, err := marking.NewDDPM(topology.NewHypercube(17)); err != nil {
		fmt.Printf("hypercube-17: rejected as Table 3 predicts (%v)\n\n", err)
	}

	// Build the 10-cube cluster and fire hostile packets through both
	// routing algorithms.
	cl, err := clusterid.New(clusterid.Config{
		Topo:    clusterid.Cube(10),
		Routing: "fully-adaptive",
		Seed:    7,
	})
	if err != nil {
		panic(err)
	}
	d, _ := clusterid.DDPMOf(cl)
	h := cl.Net
	fmt.Printf("cluster %s: degree %d, diameter %d\n", h.Name(), h.Degree(), h.Diameter())

	r := routing.NewRouter(h, routing.NewFullyAdaptiveMisroute(h))
	r.Sel = routing.RandomSelector{R: rng.NewStream(1)}
	r.MisrouteBudget = 4

	stream := rng.NewStream(2)
	trials, correct := 0, 0
	var exampleShown bool
	for trials < 5000 {
		src := clusterid.NodeID(stream.Intn(h.NumNodes()))
		dst := clusterid.NodeID(stream.Intn(h.NumNodes()))
		if src == dst {
			continue
		}
		path, err := r.Walk(src, dst, 0)
		if err != nil {
			panic(err)
		}
		pk := packet.NewPacket(cl.Plan, src, dst, packet.ProtoTCPSYN, 0)
		pk.Spoof(cl.Plan.AddrOf(clusterid.NodeID(stream.Intn(h.NumNodes()))))
		pk.Hdr.ID = uint16(stream.Intn(1 << 16)) // hostile preload
		d.OnInject(pk)
		for i := 0; i+1 < len(path); i++ {
			d.OnForward(path[i], path[i+1], pk)
		}
		got, ok := d.IdentifySource(dst, pk.Hdr.ID)
		trials++
		if ok && got == src {
			correct++
		}
		if !exampleShown && len(path) > int(h.MinDistance(src, dst))+1 {
			exampleShown = true
			fmt.Printf("\nexample misrouted packet: %d -> %d took %d hops (minimal %d)\n",
				src, dst, len(path)-1, h.MinDistance(src, dst))
			fmt.Printf("  MF (XOR word) = %016b\n", pk.Hdr.ID)
			fmt.Printf("  victim XORs its address: %d ^ MF -> source %d  (spoofed header said %v)\n",
				dst, got, pk.Hdr.Src)
		}
	}
	fmt.Printf("\nfully-adaptive with misrouting: %d/%d packets identified correctly (%.2f%%)\n",
		correct, trials, 100*float64(correct)/float64(trials))

	// XOR self-inverse: a packet that wanders and revisits dimensions
	// still telescopes to D ⊕ S.
	src := clusterid.NodeID(0b1100110011)
	cur := src
	pk := &packet.Packet{}
	d.OnInject(pk)
	wander := rng.NewStream(3)
	for i := 0; i < 101; i++ { // odd number of random single-bit flips
		nbs := h.Neighbors(cur)
		next := nbs[wander.Intn(len(nbs))]
		d.OnForward(cur, next, pk)
		cur = next
	}
	got, ok := d.IdentifySource(cur, pk.Hdr.ID)
	fmt.Printf("random 101-hop walk from %d ended at %d; MF identifies %d (ok=%v)\n",
		src, cur, got, ok)
}
