// Service: the paper's §1 threat made concrete at connection level. A
// TCP-like server with a 16-entry half-open table runs on a 6×6 mesh;
// legitimate clients handshake while a compromised node SYN-floods with
// spoofed sources. The demo shows the three acts: full service, denial
// (with backscatter landing on innocent nodes), and recovery once the
// victim blocks the DDPM-identified source at its front door.
package main

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/traceback"
	"repro/internal/victim"
)

func main() {
	run := func(phase string, withFlood, withBlock bool) {
		cl, err := core.Build(core.Config{Topo: core.Mesh2D(6), Seed: 12, QueueCap: 512})
		if err != nil {
			panic(err)
		}
		d, _ := cl.DDPM()
		svcNode := topology.NodeID(cl.Net.NumNodes() - 1)
		svc, err := victim.NewService(cl.Sim, cl.Plan, svcNode, 16, 2000)
		if err != nil {
			panic(err)
		}
		clients := victim.NewClients(cl.Sim, cl.Plan, svcNode)
		ident := traceback.NewDDPMIdentifier(d, svcNode)
		zombie := topology.NodeID(3)
		if withBlock {
			bl := filter.NewBlocklist(d, svcNode)
			bl.Block(zombie)
			svc.Blocklist = bl
		}
		cl.Sim.OnDeliver(func(now eventq.Time, pk *packet.Packet) {
			if pk.DstNode == svcNode {
				ident.Observe(pk)
			}
			svc.HandleDeliver(now, pk)
			clients.HandleDeliver(now, pk)
		})
		if withFlood {
			flood := &attack.Flood{
				Zombies: []attack.Zombie{{
					Node: zombie, Victim: svcNode, Proto: packet.ProtoTCPSYN,
					Arrival: attack.CBR{Interval: 2},
					Spoof:   attack.RandomSpoof{Plan: cl.Plan, R: cl.Rng.Stream("spoof")},
				}},
				Start: 0, Stop: 4000, RandomID: cl.Rng.Stream("ids"),
			}
			if err := flood.Launch(cl.Sim, cl.Plan); err != nil {
				panic(err)
			}
		}
		cstream := cl.Rng.Stream("clients")
		for i := 0; i < 40; i++ {
			node := topology.NodeID(cstream.Intn(cl.Net.NumNodes()))
			if node == svcNode || node == zombie {
				continue
			}
			clients.Connect(eventq.Time(100+i*90), node)
		}
		cl.Sim.RunAll(1_000_000_000)

		fmt.Printf("%-8s  completion %3.0f%%  (established %d/%d)  refused %5d  blocked %5d  backscatter %3d\n",
			phase, 100*float64(svc.Established)/float64(clients.Attempts),
			svc.Established, clients.Attempts, svc.Refused, svc.Blocked, clients.Backscatter)
		if withFlood && !withBlock {
			srcs := ident.SourcesAbove(200)
			fmt.Printf("          victim's DDPM identifier points at: %v (true zombie: node %d)\n", srcs, zombie)
		}
	}

	fmt.Println("SYN flood against a 16-entry half-open table on mesh-6x6; 40 legit handshakes attempted")
	run("clean", false, false)
	run("attack", true, false)
	run("blocked", true, true)
	fmt.Println("\nthe blocklist uses the marking field, so the spoofed headers — and the")
	fmt.Println("backscatter their SYN-ACKs caused — are gone the moment the source is blocked")
}
