// Synflood: a distributed SYN flood on an 8×8 torus — sixteen zombies,
// three different spoofing strategies, legitimate background load — and
// the victim's full pipeline: SYN-table + rate + entropy detection,
// single-packet DDPM identification, then blocklisting. Also shows the
// Ferguson–Senie ingress-filtering baseline for comparison.
package main

import (
	"fmt"
	"sort"

	clusterid "repro"
	"repro/internal/attack"
	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/rng"
)

func main() {
	cl, err := clusterid.New(clusterid.Config{
		Topo:    clusterid.Torus2D(8),
		Routing: "minimal-adaptive",
		Seed:    2026,
	})
	if err != nil {
		panic(err)
	}
	victim := clusterid.NodeID(0)
	mon, err := clusterid.NewMonitor(cl, victim)
	if err != nil {
		panic(err)
	}

	// The ingress-filter baseline runs in parallel for comparison: it
	// would stop spoofing at the source switch, at the price of an
	// address-table lookup in every switch (the paper's §6.2 tradeoff).
	ingress := clusterid.NewIngressFilter(cl)
	cl.Sim.OnDeliver(mon.Deliver)

	// Sixteen zombies spread over the torus with three spoofing styles.
	zombies := make([]attack.Zombie, 0, 16)
	zrng := rng.NewStream(1)
	used := map[clusterid.NodeID]bool{victim: true}
	spoofers := []attack.Spoofer{
		attack.RandomSpoof{Plan: cl.Plan, R: rng.NewStream(2)},
		attack.FixedSpoof{Addr: cl.Plan.AddrOf(5)}, // frame node 5
		attack.ExternalSpoof{R: rng.NewStream(3)},  // bogon sources
	}
	for len(zombies) < 16 {
		z := clusterid.NodeID(zrng.Intn(cl.Net.NumNodes()))
		if used[z] {
			continue
		}
		used[z] = true
		zombies = append(zombies, attack.Zombie{
			Node: z, Victim: victim, Proto: packet.ProtoTCPSYN,
			Arrival: &attack.OnOff{BurstLen: 16, IdleGap: 40},
			Spoof:   spoofers[len(zombies)%len(spoofers)],
		})
	}

	const warmup, attackEnd = 3000, 9000
	bg := &attack.Background{
		Pattern: attack.Uniform, InjectionRate: 0.003,
		Start: 0, Stop: attackEnd, R: rng.NewStream(4),
	}
	if err := bg.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
		panic(err)
	}
	flood := &attack.Flood{
		Zombies: zombies, Start: warmup, Stop: attackEnd,
		RandomID: rng.NewStream(5),
	}
	if err := flood.Launch(cl.Sim, cl.Plan); err != nil {
		panic(err)
	}
	fmt.Printf("torus-8x8 SYN flood: 16 zombies, %d attack packets, %d background packets\n",
		flood.Launched(), bg.Launched())

	cl.Sim.RunAll(1_000_000_000)

	if under, at := mon.UnderAttack(); under {
		fmt.Printf("detection: alarm at tick %d (flood began at %d, latency %d ticks)\n",
			at, warmup, at-eventq.Time(warmup))
	} else {
		fmt.Println("detection: NO ALARM — tune the detectors")
	}

	srcs := mon.IdentifiedSources(100)
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	zset := map[clusterid.NodeID]bool{}
	for _, z := range zombies {
		zset[z.Node] = true
	}
	hits, misses := 0, 0
	fmt.Printf("identification: %d sources exceeded 100 attributed packets\n", len(srcs))
	for _, s := range srcs {
		tag := "FALSE POSITIVE"
		if zset[s] {
			tag = "zombie"
			hits++
		} else {
			misses++
		}
		fmt.Printf("  node %2d %v  %6d pkts  %s\n",
			s, cl.Net.CoordOf(s), mon.Identifier.Count(s), tag)
	}
	fmt.Printf("score: %d/16 zombies identified, %d false positives\n", hits, misses)
	fmt.Println("note: node 5 was framed by FixedSpoof on every third zombie —")
	fmt.Println("      DDPM attribution ignores the forged header and it is NOT in the list")

	// Demonstrate the ingress baseline on a replayed sample: a spoofed
	// injection is rejected at its source switch.
	sample := packet.NewPacket(cl.Plan, zombies[0].Node, victim, packet.ProtoTCPSYN, 0)
	zombies[0].Spoof.Apply(sample)
	fmt.Printf("ingress-filter baseline: spoofed injection at the source switch -> %v,\n",
		ingress.CheckInjection(zombies[0].Node, sample))
	fmt.Println("      but it costs an address lookup per injection in every switch (§6.2 tradeoff)")
}
