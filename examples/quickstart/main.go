// Quickstart: build an 8×8 mesh cluster with DDPM marking, let one
// compromised node SYN-flood a victim with spoofed addresses, and show
// that the victim identifies the true attacker from the marking field
// of a single packet — then blocks it.
package main

import (
	"fmt"

	clusterid "repro"
	"repro/internal/attack"
	"repro/internal/rng"
)

func main() {
	// 1. Build the cluster: an 8×8 mesh with congestion-aware adaptive
	// routing and DDPM marking in every switch.
	cl, err := clusterid.New(clusterid.Config{
		Topo: clusterid.Mesh2D(8),
		Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cluster %s: %d nodes, diameter %d\n",
		cl.Net.Name(), cl.Net.NumNodes(), cl.Net.Diameter())

	// 2. Attach the victim-side monitor (detectors + DDPM identifier +
	// blocklist) to node (7,7).
	victim := clusterid.NodeID(cl.Net.NumNodes() - 1)
	mon, err := clusterid.NewMonitor(cl, victim)
	if err != nil {
		panic(err)
	}
	cl.Sim.OnDeliver(mon.Deliver)

	// 3. Normal background traffic plus one zombie flooding the victim
	// with randomly spoofed source addresses.
	bg := &attack.Background{
		Pattern: attack.Uniform, InjectionRate: 0.002,
		Start: 0, Stop: 6000, R: rng.NewStream(7),
	}
	if err := bg.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
		panic(err)
	}
	attacker := clusterid.NodeID(10) // node (1,2)
	flood := &attack.Flood{
		Zombies: []attack.Zombie{{
			Node: attacker, Victim: victim,
			Arrival: attack.CBR{Interval: 3},
			Spoof:   attack.RandomSpoof{Plan: cl.Plan, R: rng.NewStream(8)},
		}},
		Start: 2000, Stop: 6000,
		RandomID: rng.NewStream(9),
	}
	if err := flood.Launch(cl.Sim, cl.Plan); err != nil {
		panic(err)
	}
	fmt.Printf("zombie at node %d %v floods victim %d %v with %d spoofed SYNs\n",
		attacker, cl.Net.CoordOf(attacker), victim, cl.Net.CoordOf(victim), flood.Launched())

	// 4. Run the simulation.
	cl.Sim.RunAll(100_000_000)

	// 5. The pipeline's verdict.
	if under, at := mon.UnderAttack(); under {
		fmt.Printf("detected: DDoS alarm at tick %d (attack started at 2000)\n", at)
	}
	sources := mon.IdentifiedSources(50)
	fmt.Printf("identified sources (>50 packets attributed): %v\n", sources)
	for _, s := range sources {
		fmt.Printf("  node %d %v — every one of its packets pointed back to it,\n"+
			"  regardless of the spoofed header addresses\n", s, cl.Net.CoordOf(s))
	}

	// 6. Block and show the flood dies at the victim's NIC.
	mon.BlockSources(sources)
	flood2 := &attack.Flood{
		Zombies: []attack.Zombie{{
			Node: attacker, Victim: victim,
			Arrival: attack.CBR{Interval: 3},
			Spoof:   attack.RandomSpoof{Plan: cl.Plan, R: rng.NewStream(10)},
		}},
		Start: cl.Sim.Now(), Stop: cl.Sim.Now() + 2000,
		RandomID: rng.NewStream(11),
	}
	if err := flood2.Launch(cl.Sim, cl.Plan); err != nil {
		panic(err)
	}
	accBefore, _ := mon.Counts()
	cl.Sim.RunAll(100_000_000)
	accAfter, dropped := mon.Counts()
	fmt.Printf("after blocking: %d packets accepted from the renewed flood window, %d dropped\n",
		accAfter-accBefore, dropped)
}
